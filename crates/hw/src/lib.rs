//! # orianna-hw
//!
//! Hardware generation backend and cycle-level accelerator model
//! (paper Sec. 6).
//!
//! * [`templates`] — the functional-unit template library: systolic-array
//!   matrix multiplier, Givens-rotation QR unit, vector ALU, CORDIC-style
//!   special-function unit, back-substitution unit, buffer ports; each
//!   with latency, energy, and LUT/FF/BRAM/DSP resource models
//!   (Sec. 6.1).
//! * [`config`] — accelerator configurations (unit replication counts) and
//!   their aggregate resource consumption.
//! * [`generator`] — the constraint-driven optimization of Equ. 5: find
//!   the unit mix minimizing latency (or energy) under a resource budget.
//! * [`sim`] — the runtime controller model: out-of-order and in-order
//!   instruction issue over the compiled streams of all algorithms in an
//!   application (Sec. 6.3).
//! * [`search`] — search-based design-space exploration at 10³–10⁴
//!   candidate scale: seeded proposers (regularized evolution,
//!   bound-guided ranking), a deduplicating driver with admissible bound
//!   gating, multi-workload co-design objectives, and an exact
//!   pruned-sweep polish (DESIGN.md §3.4.2).
//!
//! The simulator substitutes for the paper's Xilinx ZC706 prototype; see
//! DESIGN.md §1 for the substitution rationale.
//!
//! ## Example
//!
//! ```
//! use orianna_compiler::compile;
//! use orianna_graph::{natural_ordering, FactorGraph, PriorFactor};
//! use orianna_hw::{generate, Objective, Resources, Workload};
//! use orianna_lie::Pose2;
//!
//! let mut g = FactorGraph::new();
//! let x = g.add_pose2(Pose2::new(0.1, 0.5, 0.0));
//! g.add_factor(PriorFactor::pose2(x, Pose2::identity(), 0.1));
//! let prog = compile(&g, &natural_ordering(&g)).expect("compiles");
//!
//! let wl = Workload::single("localization", &prog);
//! let result = generate(&wl, &Resources::zc706(), Objective::Latency);
//! assert!(result.report.cycles > 0);
//! ```

pub mod config;
pub mod generator;
pub mod search;
pub mod sim;
pub mod templates;

pub use config::{HwConfig, CLOCK_MHZ};
pub use generator::{
    generate, generate_with, manual_matmul_heavy, manual_qr_heavy, manual_uniform, DseContext,
    GeneratorResult, Objective, ParetoPoint, SweepMode, SweepReport,
};
pub use search::{
    canon_key, canonical_hash, default_proposers, search, search_default, BoundGuidedProposer,
    CanonKey, Combine, EvolutionProposer, Proposer, ProposerCtx, SearchBest, SearchConfig,
    SearchOutcome, SearchSpace, SearchStats, SplitMix64, Trial, TrialLog, TrialPhase, WorkloadSet,
};
pub use sim::{
    critical_path_cycles, simulate, simulate_batch, simulate_decoded, simulate_decoded_with,
    try_simulate, try_simulate_batch, try_simulate_decoded, DecodedWorkload, IssuePolicy, SimError,
    SimReport, SimScratch, Stream, Workload,
};
pub use templates::{energy_nj, latency, unit_resources, Resources};
