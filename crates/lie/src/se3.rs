//! The classic SE(3) / se(3) pose representations.
//!
//! These exist to reproduce Fig. 8 of the paper (equivalence between the
//! unified representation `<so(3), T(3)>`, SE(3), and se(3)) and the
//! Sec. 4.1/4.3 efficiency argument: SE(3) pads a 4×4 homogeneous matrix
//! with constant zeros and ones, so composing poses costs 4×4×4 = 64 MACs
//! instead of the 27 + 9 + 3 the unified representation needs, and se(3)'s
//! `Exp`/`Log` involve the 3×3 `V` matrix on top of the rotation maps.
//! The MAC counters in `orianna-math` observe this difference directly.

use crate::pose::Pose3;
use crate::so3::{hat, mat3_mul, Rot3};
use crate::SMALL_ANGLE;
use orianna_math::{macs, Mat};

/// A pose as a 4×4 homogeneous transformation matrix (SE(3)).
#[derive(Debug, Clone, PartialEq)]
pub struct SE3 {
    m: [[f64; 4]; 4],
}

impl Default for SE3 {
    fn default() -> Self {
        Self::identity()
    }
}

impl SE3 {
    /// The identity transformation.
    pub fn identity() -> Self {
        let mut m = [[0.0; 4]; 4];
        for (i, row) in m.iter_mut().enumerate() {
            row[i] = 1.0;
        }
        Self { m }
    }

    /// Builds from rotation and translation.
    pub fn from_rt(r: &Rot3, t: [f64; 3]) -> Self {
        let rm = r.matrix();
        let mut m = [[0.0; 4]; 4];
        for i in 0..3 {
            m[i][..3].copy_from_slice(&rm[i]);
            m[i][3] = t[i];
        }
        m[3][3] = 1.0;
        Self { m }
    }

    /// Rotation block.
    pub fn rotation(&self) -> Rot3 {
        let mut r = [[0.0; 3]; 3];
        for (row, mrow) in r.iter_mut().zip(&self.m) {
            row.copy_from_slice(&mrow[..3]);
        }
        Rot3::from_matrix(r)
    }

    /// Translation column.
    pub fn translation(&self) -> [f64; 3] {
        [self.m[0][3], self.m[1][3], self.m[2][3]]
    }

    /// Full 4×4 homogeneous product — the padded-arithmetic composition the
    /// paper's Sec. 4.1 calls out. Deliberately multiplies the constant
    /// zero/one row too, so MAC accounting reflects SE(3)'s true cost.
    pub fn compose(&self, rhs: &SE3) -> SE3 {
        let mut out = [[0.0; 4]; 4];
        for (out_row, lhs_row) in out.iter_mut().zip(&self.m) {
            for (c, cell) in out_row.iter_mut().enumerate() {
                let mut acc = 0.0;
                for (l, rhs_row) in lhs_row.iter().zip(&rhs.m) {
                    acc += l * rhs_row[c];
                }
                *cell = acc;
            }
        }
        macs::record(64);
        SE3 { m: out }
    }

    /// Inverse transformation.
    pub fn inverse(&self) -> SE3 {
        let rt = self.rotation().transpose();
        let t = self.translation();
        let nt = rt.rotate([-t[0], -t[1], -t[2]]);
        SE3::from_rt(&rt, nt)
    }

    /// Relative transform `rhs⁻¹ · self`.
    pub fn between(&self, rhs: &SE3) -> SE3 {
        rhs.inverse().compose(self)
    }

    /// Logarithmic map SE(3) → se(3).
    pub fn log(&self) -> Se3Tangent {
        let phi = self.rotation().log();
        let v_inv = v_matrix_inv(phi);
        let t = self.translation();
        let rho = [
            v_inv[0][0] * t[0] + v_inv[0][1] * t[1] + v_inv[0][2] * t[2],
            v_inv[1][0] * t[0] + v_inv[1][1] * t[1] + v_inv[1][2] * t[2],
            v_inv[2][0] * t[0] + v_inv[2][1] * t[1] + v_inv[2][2] * t[2],
        ];
        macs::record(9);
        Se3Tangent { rho, phi }
    }

    /// Conversion to the unified representation (Fig. 8, top edge).
    pub fn to_unified(&self) -> Pose3 {
        Pose3::from_parts(self.rotation().log(), self.translation())
    }

    /// Conversion from the unified representation (Fig. 8, top edge).
    pub fn from_unified(p: &Pose3) -> SE3 {
        SE3::from_rt(&p.rotation(), p.translation())
    }

    /// Dense matrix view (4×4).
    pub fn to_mat(&self) -> Mat {
        Mat::from_rows(&[&self.m[0], &self.m[1], &self.m[2], &self.m[3]])
    }
}

/// An element of se(3): translation part `ρ` and rotation part `φ`
/// (6-dimensional Lie-algebra vector `[ρ | φ]`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Se3Tangent {
    /// Translational component.
    pub rho: [f64; 3],
    /// Rotational component.
    pub phi: [f64; 3],
}

impl Se3Tangent {
    /// Creates a tangent element from its six coordinates `[ρ | φ]`.
    pub fn new(rho: [f64; 3], phi: [f64; 3]) -> Self {
        Self { rho, phi }
    }

    /// Exponential map se(3) → SE(3): `Exp([ρ|φ]) = [Exp(φ), V(φ)ρ; 0 1]`.
    pub fn exp(&self) -> SE3 {
        let r = Rot3::exp(self.phi);
        let v = v_matrix(self.phi);
        let t = [
            v[0][0] * self.rho[0] + v[0][1] * self.rho[1] + v[0][2] * self.rho[2],
            v[1][0] * self.rho[0] + v[1][1] * self.rho[1] + v[1][2] * self.rho[2],
            v[2][0] * self.rho[0] + v[2][1] * self.rho[1] + v[2][2] * self.rho[2],
        ];
        macs::record(9);
        SE3::from_rt(&r, t)
    }

    /// Conversion to the unified representation (Fig. 8, diagonal edge):
    /// the linear map `J = V(φ)` applied to the position component.
    pub fn to_unified(&self) -> Pose3 {
        self.exp().to_unified()
    }

    /// Conversion from the unified representation.
    pub fn from_unified(p: &Pose3) -> Se3Tangent {
        SE3::from_unified(p).log()
    }

    /// Coordinates as a 6-array `[ρ | φ]`.
    pub fn coords(&self) -> [f64; 6] {
        [
            self.rho[0],
            self.rho[1],
            self.rho[2],
            self.phi[0],
            self.phi[1],
            self.phi[2],
        ]
    }
}

/// The left Jacobian `V(φ)` of SE(3):
/// `V = I + (1−cosθ)/θ² φ^ + (θ−sinθ)/θ³ (φ^)²`.
fn v_matrix(phi: [f64; 3]) -> [[f64; 3]; 3] {
    let theta2 = phi[0] * phi[0] + phi[1] * phi[1] + phi[2] * phi[2];
    let theta = theta2.sqrt();
    let k = hat(phi);
    let k2 = mat3_mul(&k, &k);
    let (a, b) = if theta < SMALL_ANGLE {
        (0.5 - theta2 / 24.0, 1.0 / 6.0 - theta2 / 120.0)
    } else {
        (
            (1.0 - theta.cos()) / theta2,
            (theta - theta.sin()) / (theta2 * theta),
        )
    };
    macs::record(27 + 18 + 6);
    let mut out = [[0.0; 3]; 3];
    for r in 0..3 {
        for c in 0..3 {
            out[r][c] = if r == c { 1.0 } else { 0.0 } + a * k[r][c] + b * k2[r][c];
        }
    }
    out
}

/// Inverse of [`v_matrix`]:
/// `V⁻¹ = I − ½φ^ + (1/θ² − (1+cosθ)/(2θ sinθ)) (φ^)²`.
fn v_matrix_inv(phi: [f64; 3]) -> [[f64; 3]; 3] {
    let theta2 = phi[0] * phi[0] + phi[1] * phi[1] + phi[2] * phi[2];
    let theta = theta2.sqrt();
    let k = hat(phi);
    let k2 = mat3_mul(&k, &k);
    let b = if theta < SMALL_ANGLE {
        1.0 / 12.0 + theta2 / 720.0
    } else {
        1.0 / theta2 - (1.0 + theta.cos()) / (2.0 * theta * theta.sin())
    };
    macs::record(27 + 18 + 6);
    let mut out = [[0.0; 3]; 3];
    for r in 0..3 {
        for c in 0..3 {
            out[r][c] = if r == c { 1.0 } else { 0.0 } - 0.5 * k[r][c] + b * k2[r][c];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn norm3(v: [f64; 3]) -> f64 {
        (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt()
    }

    #[test]
    fn exp_log_roundtrip() {
        let xi = Se3Tangent::new([1.0, -2.0, 0.5], [0.3, 0.2, -0.4]);
        let back = xi.exp().log();
        assert!(
            norm3([
                back.rho[0] - xi.rho[0],
                back.rho[1] - xi.rho[1],
                back.rho[2] - xi.rho[2]
            ]) < 1e-10
        );
        assert!(
            norm3([
                back.phi[0] - xi.phi[0],
                back.phi[1] - xi.phi[1],
                back.phi[2] - xi.phi[2]
            ]) < 1e-10
        );
    }

    #[test]
    fn exp_log_small_angle() {
        let xi = Se3Tangent::new([0.1, 0.2, 0.3], [1e-10, -2e-10, 1e-10]);
        let back = xi.exp().log();
        for i in 0..3 {
            assert!((back.rho[i] - xi.rho[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn compose_matches_unified_compose() {
        // Fig. 8 equivalence: composing in SE(3) and converting equals
        // composing in the unified representation.
        let a = Pose3::from_parts([0.2, -0.3, 0.4], [1.0, 2.0, -0.5]);
        let b = Pose3::from_parts([-0.1, 0.5, 0.2], [0.3, -0.7, 1.2]);
        let se = SE3::from_unified(&a)
            .compose(&SE3::from_unified(&b))
            .to_unified();
        let un = a.compose(&b);
        assert!(se.rotation_distance(&un) < 1e-10);
        assert!(se.translation_distance(&un) < 1e-10);
    }

    #[test]
    fn between_matches_unified_between() {
        let a = Pose3::from_parts([0.2, -0.3, 0.4], [1.0, 2.0, -0.5]);
        let b = Pose3::from_parts([-0.1, 0.5, 0.2], [0.3, -0.7, 1.2]);
        let se = SE3::from_unified(&a)
            .between(&SE3::from_unified(&b))
            .to_unified();
        let un = a.between(&b);
        assert!(se.rotation_distance(&un) < 1e-10);
        assert!(se.translation_distance(&un) < 1e-10);
    }

    #[test]
    fn unified_se3_roundtrip() {
        let p = Pose3::from_parts([0.4, 0.1, -0.6], [2.0, -1.0, 0.5]);
        let back = SE3::from_unified(&p).to_unified();
        assert!(p.rotation_distance(&back) < 1e-12);
        assert!(p.translation_distance(&back) < 1e-12);
    }

    #[test]
    fn unified_se3_tangent_roundtrip() {
        let p = Pose3::from_parts([0.4, 0.1, -0.6], [2.0, -1.0, 0.5]);
        let back = Se3Tangent::from_unified(&p).to_unified();
        assert!(p.rotation_distance(&back) < 1e-10);
        assert!(p.translation_distance(&back) < 1e-10);
    }

    #[test]
    fn inverse_cancels() {
        let p = SE3::from_unified(&Pose3::from_parts([0.3, 0.7, -0.2], [1.0, 0.0, -3.0]));
        let i = p.compose(&p.inverse());
        assert!(norm3(i.translation()) < 1e-12);
        assert!(norm3(i.rotation().log()) < 1e-12);
    }

    #[test]
    fn se3_compose_costs_more_macs_than_unified() {
        // The efficiency claim of Sec. 4.1: SE(3) padding wastes MACs.
        let a = Pose3::from_parts([0.2, -0.3, 0.4], [1.0, 2.0, -0.5]);
        let b = Pose3::from_parts([-0.1, 0.5, 0.2], [0.3, -0.7, 1.2]);
        let sa = SE3::from_unified(&a);
        let sb = SE3::from_unified(&b);
        let (_, se3_macs) = macs::measure(|| sa.compose(&sb));
        // The unified path needs Exp twice + RR + RV + VP + Log; but once
        // rotations are cached (as the accelerator does within a MO-DFG),
        // the core composition is RR + RV + VP = 27 + 9 + 3.
        let ra = a.rotation();
        let rb = b.rotation();
        let (_, uni_macs) = macs::measure(|| {
            let _r = ra.compose(&rb);
            let _t = ra.rotate(b.translation());
        });
        assert!(se3_macs > uni_macs, "{se3_macs} vs {uni_macs}");
    }
}
