//! Unit quaternions — the traditional localization-pipeline orientation
//! representation (paper Sec. 4.1: "the localization algorithm may use a
//! combination of a 4-dimensional quaternion q and 3-dimensional position
//! vector T(3)").
//!
//! Provided for the representation-landscape completeness of Fig. 8:
//! conversions to/from [`Rot3`] and the unified `<so(3), T(3)>` pose, and
//! the MAC-count evidence that a quaternion pipeline also carries
//! conversion overhead relative to the unified representation (each
//! optimization step must map in and out of the tangent space anyway).

use crate::so3::Rot3;
use crate::SMALL_ANGLE;
use orianna_math::macs;

/// A unit quaternion `w + xi + yj + zk` representing a 3D rotation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quat {
    /// Scalar part.
    pub w: f64,
    /// i component.
    pub x: f64,
    /// j component.
    pub y: f64,
    /// k component.
    pub z: f64,
}

impl Default for Quat {
    fn default() -> Self {
        Self::identity()
    }
}

impl Quat {
    /// The identity rotation.
    pub fn identity() -> Self {
        Self {
            w: 1.0,
            x: 0.0,
            y: 0.0,
            z: 0.0,
        }
    }

    /// Exponential map: so(3) vector → unit quaternion.
    pub fn exp(phi: [f64; 3]) -> Self {
        let theta2 = phi[0] * phi[0] + phi[1] * phi[1] + phi[2] * phi[2];
        let theta = theta2.sqrt();
        macs::record(8);
        let (w, s) = if theta < SMALL_ANGLE {
            (1.0 - theta2 / 8.0, 0.5 - theta2 / 48.0)
        } else {
            let half = 0.5 * theta;
            (half.cos(), half.sin() / theta)
        };
        Self {
            w,
            x: s * phi[0],
            y: s * phi[1],
            z: s * phi[2],
        }
    }

    /// Logarithmic map: unit quaternion → so(3) vector.
    pub fn log(&self) -> [f64; 3] {
        macs::record(8);
        let vn = (self.x * self.x + self.y * self.y + self.z * self.z).sqrt();
        if vn < SMALL_ANGLE {
            return [2.0 * self.x, 2.0 * self.y, 2.0 * self.z];
        }
        // Angle in (−π, π]: use atan2 with the (sign-corrected) scalar.
        let (w, sx, sy, sz) = if self.w < 0.0 {
            (-self.w, -self.x, -self.y, -self.z)
        } else {
            (self.w, self.x, self.y, self.z)
        };
        let theta = 2.0 * vn.atan2(w);
        let f = theta / vn;
        [f * sx, f * sy, f * sz]
    }

    /// Hamilton product `self · rhs` (16 multiplies — the padded
    /// arithmetic the unified representation's `RR` avoids at 3×3 but the
    /// quaternion's renormalization and conversion steps reintroduce).
    pub fn compose(&self, rhs: &Quat) -> Quat {
        macs::record(16);
        Quat {
            w: self.w * rhs.w - self.x * rhs.x - self.y * rhs.y - self.z * rhs.z,
            x: self.w * rhs.x + self.x * rhs.w + self.y * rhs.z - self.z * rhs.y,
            y: self.w * rhs.y - self.x * rhs.z + self.y * rhs.w + self.z * rhs.x,
            z: self.w * rhs.z + self.x * rhs.y - self.y * rhs.x + self.z * rhs.w,
        }
    }

    /// Conjugate (inverse for unit quaternions).
    pub fn conjugate(&self) -> Quat {
        Quat {
            w: self.w,
            x: -self.x,
            y: -self.y,
            z: -self.z,
        }
    }

    /// Rotates a vector: `q v q⁻¹` expanded to 30 multiplies.
    pub fn rotate(&self, v: [f64; 3]) -> [f64; 3] {
        macs::record(30);
        // t = 2 q_v × v;  v' = v + w t + q_v × t.
        let t = [
            2.0 * (self.y * v[2] - self.z * v[1]),
            2.0 * (self.z * v[0] - self.x * v[2]),
            2.0 * (self.x * v[1] - self.y * v[0]),
        ];
        [
            v[0] + self.w * t[0] + self.y * t[2] - self.z * t[1],
            v[1] + self.w * t[1] + self.z * t[0] - self.x * t[2],
            v[2] + self.w * t[2] + self.x * t[1] - self.y * t[0],
        ]
    }

    /// Norm of the quaternion.
    pub fn norm(&self) -> f64 {
        (self.w * self.w + self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Renormalizes to a unit quaternion (the numerical-hygiene step a
    /// quaternion pipeline pays every few compositions).
    pub fn normalized(&self) -> Quat {
        let n = self.norm();
        macs::record(8);
        Quat {
            w: self.w / n,
            x: self.x / n,
            y: self.y / n,
            z: self.z / n,
        }
    }

    /// Conversion to a rotation matrix.
    pub fn to_rot3(&self) -> Rot3 {
        macs::record(30);
        let (w, x, y, z) = (self.w, self.x, self.y, self.z);
        Rot3::from_matrix([
            [
                1.0 - 2.0 * (y * y + z * z),
                2.0 * (x * y - w * z),
                2.0 * (x * z + w * y),
            ],
            [
                2.0 * (x * y + w * z),
                1.0 - 2.0 * (x * x + z * z),
                2.0 * (y * z - w * x),
            ],
            [
                2.0 * (x * z - w * y),
                2.0 * (y * z + w * x),
                1.0 - 2.0 * (x * x + y * y),
            ],
        ])
    }

    /// Conversion from a rotation matrix (Shepperd's method).
    pub fn from_rot3(r: &Rot3) -> Quat {
        macs::record(20);
        let m = r.matrix();
        let trace = m[0][0] + m[1][1] + m[2][2];
        let q = if trace > 0.0 {
            let s = (trace + 1.0).sqrt() * 2.0;
            Quat {
                w: 0.25 * s,
                x: (m[2][1] - m[1][2]) / s,
                y: (m[0][2] - m[2][0]) / s,
                z: (m[1][0] - m[0][1]) / s,
            }
        } else if m[0][0] > m[1][1] && m[0][0] > m[2][2] {
            let s = (1.0 + m[0][0] - m[1][1] - m[2][2]).sqrt() * 2.0;
            Quat {
                w: (m[2][1] - m[1][2]) / s,
                x: 0.25 * s,
                y: (m[0][1] + m[1][0]) / s,
                z: (m[0][2] + m[2][0]) / s,
            }
        } else if m[1][1] > m[2][2] {
            let s = (1.0 + m[1][1] - m[0][0] - m[2][2]).sqrt() * 2.0;
            Quat {
                w: (m[0][2] - m[2][0]) / s,
                x: (m[0][1] + m[1][0]) / s,
                y: 0.25 * s,
                z: (m[1][2] + m[2][1]) / s,
            }
        } else {
            let s = (1.0 + m[2][2] - m[0][0] - m[1][1]).sqrt() * 2.0;
            Quat {
                w: (m[1][0] - m[0][1]) / s,
                x: (m[0][2] + m[2][0]) / s,
                y: (m[1][2] + m[2][1]) / s,
                z: 0.25 * s,
            }
        };
        q.normalized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn norm3(v: [f64; 3]) -> f64 {
        (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt()
    }

    #[test]
    fn exp_log_roundtrip() {
        for phi in [
            [0.3, -0.2, 0.5],
            [1.5, 0.0, 0.0],
            [1e-10, 2e-10, 0.0],
            [0.0, 0.0, 3.0],
        ] {
            let back = Quat::exp(phi).log();
            let err = norm3([back[0] - phi[0], back[1] - phi[1], back[2] - phi[2]]);
            assert!(err < 1e-9, "{phi:?} -> {back:?}");
        }
    }

    #[test]
    fn exp_is_unit() {
        for phi in [[0.1, 0.2, 0.3], [2.0, -1.0, 0.5]] {
            assert!((Quat::exp(phi).norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn matches_rotation_matrix_composition() {
        let a = [0.4, -0.1, 0.2];
        let b = [-0.3, 0.5, 0.1];
        let q = Quat::exp(a).compose(&Quat::exp(b));
        let r = Rot3::exp(a).compose(&Rot3::exp(b));
        let diff = q.to_rot3().transpose().compose(&r).log();
        assert!(norm3(diff) < 1e-10);
    }

    #[test]
    fn rotate_matches_matrix() {
        let phi = [0.3, 0.7, -0.4];
        let v = [1.0, -2.0, 0.5];
        let qv = Quat::exp(phi).rotate(v);
        let rv = Rot3::exp(phi).rotate(v);
        assert!(norm3([qv[0] - rv[0], qv[1] - rv[1], qv[2] - rv[2]]) < 1e-12);
    }

    #[test]
    fn rot3_roundtrip_all_branches() {
        // Exercise each branch of Shepperd's method with rotations near
        // the axes at angle ~π.
        for phi in [
            [3.1, 0.0, 0.0],
            [0.0, 3.1, 0.0],
            [0.0, 0.0, 3.1],
            [0.2, 0.1, 0.3],
        ] {
            let r = Rot3::exp(phi);
            let back = Quat::from_rot3(&r).to_rot3();
            let diff = r.transpose().compose(&back).log();
            assert!(norm3(diff) < 1e-9, "{phi:?}");
        }
    }

    #[test]
    fn conjugate_is_inverse() {
        let q = Quat::exp([0.5, -0.2, 0.8]);
        let i = q.compose(&q.conjugate());
        assert!((i.w - 1.0).abs() < 1e-12 && norm3([i.x, i.y, i.z]) < 1e-12);
    }

    #[test]
    fn double_cover_log_uses_short_arc() {
        let q = Quat::exp([0.0, 0.0, 0.4]);
        let nq = Quat {
            w: -q.w,
            x: -q.x,
            y: -q.y,
            z: -q.z,
        };
        let back = nq.log();
        assert!((back[2] - 0.4).abs() < 1e-9, "{back:?}");
    }
}
