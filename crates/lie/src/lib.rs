//! # orianna-lie
//!
//! Lie-group machinery and the **unified pose representation** of the
//! ORIANNA paper (Sec. 4).
//!
//! Optimization-based robotic algorithms traditionally mix pose
//! representations — quaternions + translation for localization, SE(n) /
//! se(n) for planning — which prevents a common abstraction and adds
//! padded-zero arithmetic. ORIANNA instead represents every pose as
//! `<so(n), T(n)>`: a Lie-algebra vector for the orientation plus a plain
//! translation vector, with composition (⊕) and difference (⊖) defined by
//! Equ. 2 of the paper:
//!
//! ```text
//! ξ₁ ⊕ ξ₂ = < Log(R₁R₂),  t₁ + R₁t₂ >
//! ξ₁ ⊖ ξ₂ = < Log(R₂ᵀR₁), R₂ᵀ(t₁ − t₂) >      Rᵢ = Exp(φᵢ)
//! ```
//!
//! This crate provides:
//! * [`so2`] / [`so3`] — rotation groups with `Exp`/`Log`, hat/vee, and the
//!   right Jacobian `Jr` and its inverse (primitives of Tbl. 3),
//! * [`pose`] — [`Pose2`] and [`Pose3`] in the unified representation,
//!   including the retraction used by the Gauss-Newton solvers,
//! * [`se3`] — the classic homogeneous SE(3)/se(3) representation, used to
//!   validate equivalence (Fig. 8) and to measure the MAC overhead the
//!   unified representation avoids (Sec. 4.3).
//!
//! ## Example
//!
//! ```
//! use orianna_lie::Pose3;
//!
//! let a = Pose3::from_parts([0.0, 0.0, std::f64::consts::FRAC_PI_2], [1.0, 0.0, 0.0]);
//! let b = Pose3::from_parts([0.0, 0.0, 0.0], [1.0, 0.0, 0.0]);
//! let c = a.compose(&b); // a ⊕ b: walk 1m forward after a 90° yaw
//! assert!((c.translation()[1] - 1.0).abs() < 1e-12);
//! let d = c.between(&a);  // c ⊖ a recovers b
//! assert!((d.translation()[0] - 1.0).abs() < 1e-12);
//! ```

pub mod pose;
pub mod quat;
pub mod se3;
pub mod so2;
pub mod so3;

pub use pose::{Pose2, Pose3};
pub use quat::Quat;
pub use se3::{Se3Tangent, SE3};
pub use so2::Rot2;
pub use so3::Rot3;

/// Angle below which Taylor expansions replace closed-form trigonometric
/// Lie formulas for numerical stability.
pub(crate) const SMALL_ANGLE: f64 = 1e-8;
