//! The 3D rotation group SO(3) and its Lie algebra so(3).
//!
//! Implements the primitive operations of the paper's Tbl. 3 that involve
//! rotations: `Exp`, `Log`, hat (skew-symmetric, `(·)^`), the right Jacobian
//! `Jr(·)` and its inverse `Jr⁻¹(·)`, rotation transpose (`RT`), rotation
//! composition (`RR`), and rotation–vector products (`RV`). Formulas follow
//! Solà et al., *A micro Lie theory for state estimation in robotics*
//! (paper reference \[55\]).

use crate::SMALL_ANGLE;
use orianna_math::{macs, Mat};

/// A rotation in SO(3), stored as an orthonormal 3×3 matrix.
///
/// # Example
/// ```
/// use orianna_lie::Rot3;
/// let r = Rot3::exp([0.0, 0.0, std::f64::consts::FRAC_PI_2]);
/// let v = r.rotate([1.0, 0.0, 0.0]);
/// assert!((v[1] - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Rot3 {
    m: [[f64; 3]; 3],
}

impl Default for Rot3 {
    fn default() -> Self {
        Self::identity()
    }
}

impl Rot3 {
    /// The identity rotation.
    pub fn identity() -> Self {
        Self {
            m: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]],
        }
    }

    /// Builds a rotation from a row-major 3×3 array.
    ///
    /// The caller is responsible for orthonormality; see
    /// [`Rot3::is_orthonormal`] to verify.
    pub fn from_matrix(m: [[f64; 3]; 3]) -> Self {
        Self { m }
    }

    /// Exponential map so(3) → SO(3) (Rodrigues' formula).
    ///
    /// `Exp(φ) = I + sinθ/θ · φ^ + (1−cosθ)/θ² · (φ^)²` with `θ = |φ|`.
    pub fn exp(phi: [f64; 3]) -> Self {
        let theta2 = phi[0] * phi[0] + phi[1] * phi[1] + phi[2] * phi[2];
        let theta = theta2.sqrt();
        let (a, b) = if theta < SMALL_ANGLE {
            // sinθ/θ ≈ 1 − θ²/6, (1−cosθ)/θ² ≈ 1/2 − θ²/24
            (1.0 - theta2 / 6.0, 0.5 - theta2 / 24.0)
        } else {
            (theta.sin() / theta, (1.0 - theta.cos()) / theta2)
        };
        let k = hat(phi);
        let k2 = mat3_mul(&k, &k);
        let mut m = [[0.0; 3]; 3];
        for r in 0..3 {
            for c in 0..3 {
                m[r][c] = if r == c { 1.0 } else { 0.0 } + a * k[r][c] + b * k2[r][c];
            }
        }
        macs::record(3 * 3 * 3 + 2 * 9 + 4); // k², blend, trig-class ops
        Self { m }
    }

    /// Logarithmic map SO(3) → so(3).
    ///
    /// Robust across the full angle range including θ near 0 and π.
    pub fn log(&self) -> [f64; 3] {
        let m = &self.m;
        let trace = m[0][0] + m[1][1] + m[2][2];
        let cos_theta = ((trace - 1.0) * 0.5).clamp(-1.0, 1.0);
        let theta = cos_theta.acos();
        macs::record(12);
        if theta < SMALL_ANGLE {
            // ω ≈ ½ vee(R − Rᵀ) for small angles.
            return [
                0.5 * (m[2][1] - m[1][2]),
                0.5 * (m[0][2] - m[2][0]),
                0.5 * (m[1][0] - m[0][1]),
            ];
        }
        if (std::f64::consts::PI - theta) < 1e-6 {
            // Near π: extract axis from the symmetric part
            // R ≈ I·cosθ + (1−cosθ) a aᵀ ⇒ a aᵀ = (R + I) / (1 + trace/... )
            // Use diagonal-dominant extraction.
            let xx = (m[0][0] - cos_theta) / (1.0 - cos_theta);
            let yy = (m[1][1] - cos_theta) / (1.0 - cos_theta);
            let zz = (m[2][2] - cos_theta) / (1.0 - cos_theta);
            let mut axis = [xx.max(0.0).sqrt(), yy.max(0.0).sqrt(), zz.max(0.0).sqrt()];
            // Pick the largest component as the sign anchor and fix the
            // other signs from off-diagonal sums.
            let k = if axis[0] >= axis[1] && axis[0] >= axis[2] {
                0
            } else if axis[1] >= axis[2] {
                1
            } else {
                2
            };
            match k {
                0 => {
                    axis[1] = axis[1].copysign(m[0][1] + m[1][0]);
                    axis[2] = axis[2].copysign(m[0][2] + m[2][0]);
                }
                1 => {
                    axis[0] = axis[0].copysign(m[0][1] + m[1][0]);
                    axis[2] = axis[2].copysign(m[1][2] + m[2][1]);
                }
                _ => {
                    axis[0] = axis[0].copysign(m[0][2] + m[2][0]);
                    axis[1] = axis[1].copysign(m[1][2] + m[2][1]);
                }
            }
            let n = (axis[0] * axis[0] + axis[1] * axis[1] + axis[2] * axis[2]).sqrt();
            // Disambiguate the overall sign with the skew part (may vanish
            // exactly at π, where both signs are equivalent).
            let skew = [m[2][1] - m[1][2], m[0][2] - m[2][0], m[1][0] - m[0][1]];
            let dot = axis[0] * skew[0] + axis[1] * skew[1] + axis[2] * skew[2];
            let sign = if dot < 0.0 { -1.0 } else { 1.0 };
            return [
                sign * theta * axis[0] / n,
                sign * theta * axis[1] / n,
                sign * theta * axis[2] / n,
            ];
        }
        let f = theta / (2.0 * theta.sin());
        [
            f * (m[2][1] - m[1][2]),
            f * (m[0][2] - m[2][0]),
            f * (m[1][0] - m[0][1]),
        ]
    }

    /// Rotation composition `self · rhs` (the paper's `RR` primitive).
    pub fn compose(&self, rhs: &Rot3) -> Rot3 {
        macs::record(27);
        Rot3 {
            m: mat3_mul(&self.m, &rhs.m),
        }
    }

    /// Transpose / inverse rotation (the paper's `RT` primitive).
    pub fn transpose(&self) -> Rot3 {
        let m = &self.m;
        Rot3 {
            m: [
                [m[0][0], m[1][0], m[2][0]],
                [m[0][1], m[1][1], m[2][1]],
                [m[0][2], m[1][2], m[2][2]],
            ],
        }
    }

    /// Rotates a vector (the paper's `RV` primitive).
    pub fn rotate(&self, v: [f64; 3]) -> [f64; 3] {
        macs::record(9);
        let m = &self.m;
        [
            m[0][0] * v[0] + m[0][1] * v[1] + m[0][2] * v[2],
            m[1][0] * v[0] + m[1][1] * v[1] + m[1][2] * v[2],
            m[2][0] * v[0] + m[2][1] * v[1] + m[2][2] * v[2],
        ]
    }

    /// Row-major matrix view.
    pub fn matrix(&self) -> [[f64; 3]; 3] {
        self.m
    }

    /// Conversion to a dense [`Mat`].
    pub fn to_mat(&self) -> Mat {
        Mat::from_rows(&[&self.m[0], &self.m[1], &self.m[2]])
    }

    /// True when `RᵀR = I` and `det R = 1` within `tol`.
    pub fn is_orthonormal(&self, tol: f64) -> bool {
        let t = self.transpose().compose(self);
        let mut ok = true;
        for r in 0..3 {
            for c in 0..3 {
                let expect = if r == c { 1.0 } else { 0.0 };
                ok &= (t.m[r][c] - expect).abs() < tol;
            }
        }
        ok && (det3(&self.m) - 1.0).abs() < tol
    }
}

/// Skew-symmetric (hat) operator `(·)^` of Tbl. 3: `hat(v) w = v × w`.
pub fn hat(v: [f64; 3]) -> [[f64; 3]; 3] {
    [[0.0, -v[2], v[1]], [v[2], 0.0, -v[0]], [-v[1], v[0], 0.0]]
}

/// Inverse of [`hat`]: extracts the vector from a skew-symmetric matrix.
pub fn vee(m: &[[f64; 3]; 3]) -> [f64; 3] {
    [m[2][1], m[0][2], m[1][0]]
}

/// Right Jacobian of SO(3) (`Jr(·)` of Tbl. 3):
/// `Exp(φ + δ) ≈ Exp(φ) · Exp(Jr(φ) δ)`.
pub fn right_jacobian(phi: [f64; 3]) -> Mat {
    let theta2 = phi[0] * phi[0] + phi[1] * phi[1] + phi[2] * phi[2];
    let theta = theta2.sqrt();
    let k = hat(phi);
    let k2 = mat3_mul(&k, &k);
    let (a, b) = if theta < SMALL_ANGLE {
        (0.5 - theta2 / 24.0, 1.0 / 6.0 - theta2 / 120.0)
    } else {
        (
            (1.0 - theta.cos()) / theta2,
            (theta - theta.sin()) / (theta2 * theta),
        )
    };
    macs::record(27 + 2 * 9 + 6);
    let mut out = Mat::identity(3);
    for r in 0..3 {
        for c in 0..3 {
            out[(r, c)] += -a * k[r][c] + b * k2[r][c];
        }
    }
    out
}

/// Inverse right Jacobian of SO(3) (`Jr⁻¹(·)` of Tbl. 3).
pub fn right_jacobian_inv(phi: [f64; 3]) -> Mat {
    let theta2 = phi[0] * phi[0] + phi[1] * phi[1] + phi[2] * phi[2];
    let theta = theta2.sqrt();
    let k = hat(phi);
    let k2 = mat3_mul(&k, &k);
    let b = if theta < SMALL_ANGLE {
        1.0 / 12.0 + theta2 / 720.0
    } else {
        1.0 / theta2 - (1.0 + theta.cos()) / (2.0 * theta * theta.sin())
    };
    macs::record(27 + 2 * 9 + 6);
    let mut out = Mat::identity(3);
    for r in 0..3 {
        for c in 0..3 {
            out[(r, c)] += 0.5 * k[r][c] + b * k2[r][c];
        }
    }
    out
}

pub(crate) fn mat3_mul(a: &[[f64; 3]; 3], b: &[[f64; 3]; 3]) -> [[f64; 3]; 3] {
    let mut out = [[0.0; 3]; 3];
    for r in 0..3 {
        for c in 0..3 {
            out[r][c] = a[r][0] * b[0][c] + a[r][1] * b[1][c] + a[r][2] * b[2][c];
        }
    }
    out
}

fn det3(m: &[[f64; 3]; 3]) -> f64 {
    m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
        - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
        + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn norm3(v: [f64; 3]) -> f64 {
        (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt()
    }

    fn sub3(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
        [a[0] - b[0], a[1] - b[1], a[2] - b[2]]
    }

    #[test]
    fn exp_of_zero_is_identity() {
        assert_eq!(Rot3::exp([0.0; 3]), Rot3::identity());
    }

    #[test]
    fn exp_is_orthonormal() {
        for phi in [
            [0.1, 0.2, 0.3],
            [1.0, -2.0, 0.5],
            [3.0, 0.0, 0.0],
            [1e-10, 0.0, 1e-10],
        ] {
            assert!(Rot3::exp(phi).is_orthonormal(1e-12), "{phi:?}");
        }
    }

    #[test]
    fn log_exp_roundtrip() {
        for phi in [
            [0.1, 0.2, 0.3],
            [-0.5, 0.4, 0.9],
            [1.5, -1.0, 0.7],
            [1e-10, 2e-10, -1e-10],
            [0.0, 0.0, 3.0],
        ] {
            let back = Rot3::exp(phi).log();
            assert!(norm3(sub3(back, phi)) < 1e-9, "{phi:?} -> {back:?}");
        }
    }

    #[test]
    fn log_near_pi_is_robust() {
        // Angle π−ε about various axes.
        for axis in [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.577, 0.577, 0.577]] {
            let n = norm3(axis);
            let theta = std::f64::consts::PI - 1e-9;
            let phi = [
                axis[0] / n * theta,
                axis[1] / n * theta,
                axis[2] / n * theta,
            ];
            let back = Rot3::exp(phi).log();
            // Recovered rotation must equal the original rotation.
            let diff = Rot3::exp(phi).transpose().compose(&Rot3::exp(back));
            assert!(norm3(diff.log()) < 1e-6, "{phi:?} -> {back:?}");
        }
    }

    #[test]
    fn compose_matches_angle_addition_same_axis() {
        let a = Rot3::exp([0.0, 0.0, 0.3]);
        let b = Rot3::exp([0.0, 0.0, 0.4]);
        let c = a.compose(&b).log();
        assert!((c[2] - 0.7).abs() < 1e-12);
    }

    #[test]
    fn transpose_is_inverse() {
        let r = Rot3::exp([0.4, -0.2, 0.9]);
        let i = r.compose(&r.transpose());
        assert!(norm3(i.log()) < 1e-12);
    }

    #[test]
    fn rotate_preserves_norm() {
        let r = Rot3::exp([0.3, 0.1, -0.7]);
        let v = [1.0, 2.0, 3.0];
        assert!((norm3(r.rotate(v)) - norm3(v)).abs() < 1e-12);
    }

    #[test]
    fn hat_vee_roundtrip_and_cross_product() {
        let v = [1.0, -2.0, 0.5];
        let h = hat(v);
        assert_eq!(vee(&h), v);
        // hat(v) w == v × w
        let w = [0.3, 0.7, -1.1];
        let hw = [
            h[0][0] * w[0] + h[0][1] * w[1] + h[0][2] * w[2],
            h[1][0] * w[0] + h[1][1] * w[1] + h[1][2] * w[2],
            h[2][0] * w[0] + h[2][1] * w[1] + h[2][2] * w[2],
        ];
        let cross = [
            v[1] * w[2] - v[2] * w[1],
            v[2] * w[0] - v[0] * w[2],
            v[0] * w[1] - v[1] * w[0],
        ];
        assert!(norm3(sub3(hw, cross)) < 1e-12);
    }

    #[test]
    fn right_jacobian_first_order_property() {
        // Exp(φ + δ) ≈ Exp(φ) Exp(Jr(φ) δ) to first order.
        let phi = [0.4, -0.3, 0.8];
        let delta = [1e-6, -2e-6, 1.5e-6];
        let lhs = Rot3::exp([phi[0] + delta[0], phi[1] + delta[1], phi[2] + delta[2]]);
        let jr = right_jacobian(phi);
        let jd = jr.mul_vec(&orianna_math::Vec64::from_slice(&delta));
        let rhs = Rot3::exp(phi).compose(&Rot3::exp([jd[0], jd[1], jd[2]]));
        let err = lhs.transpose().compose(&rhs).log();
        assert!(norm3(err) < 1e-11, "{err:?}");
    }

    #[test]
    fn right_jacobian_inverse_is_inverse() {
        for phi in [[0.1, 0.2, 0.3], [1.2, -0.4, 0.9], [1e-10, 0.0, 0.0]] {
            let jr = right_jacobian(phi);
            let jri = right_jacobian_inv(phi);
            let prod = jr.mul_mat(&jri);
            assert!((&prod - &Mat::identity(3)).norm() < 1e-9, "{phi:?}");
        }
    }

    #[test]
    fn right_jacobian_at_zero_is_identity() {
        assert!((&right_jacobian([0.0; 3]) - &Mat::identity(3)).norm() < 1e-12);
        assert!((&right_jacobian_inv([0.0; 3]) - &Mat::identity(3)).norm() < 1e-12);
    }

    #[test]
    fn to_mat_matches_matrix() {
        let r = Rot3::exp([0.2, 0.3, -0.1]);
        let m = r.to_mat();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(m[(i, j)], r.matrix()[i][j]);
            }
        }
    }
}
