//! The planar rotation group SO(2) and its Lie algebra so(2).
//!
//! In two dimensions the Lie algebra is one-dimensional (a single angle),
//! `Exp`/`Log` reduce to trigonometric evaluation/`atan2`, and the right
//! Jacobian is the 1×1 identity — the paper notes (Sec. 5.2, footnote 2)
//! that the 2D primitives are the same as the 3D ones "except for slight
//! differences in the results of back propagation".

use orianna_math::{macs, Mat};

/// A rotation in SO(2), stored as `(cos θ, sin θ)`.
///
/// # Example
/// ```
/// use orianna_lie::Rot2;
/// let r = Rot2::exp(std::f64::consts::FRAC_PI_2);
/// let v = r.rotate([1.0, 0.0]);
/// assert!((v[1] - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rot2 {
    c: f64,
    s: f64,
}

impl Default for Rot2 {
    fn default() -> Self {
        Self::identity()
    }
}

impl Rot2 {
    /// The identity rotation.
    pub fn identity() -> Self {
        Self { c: 1.0, s: 0.0 }
    }

    /// Exponential map so(2) → SO(2).
    pub fn exp(theta: f64) -> Self {
        macs::record(2);
        Self {
            c: theta.cos(),
            s: theta.sin(),
        }
    }

    /// Logarithmic map SO(2) → so(2); result in `(−π, π]`.
    pub fn log(&self) -> f64 {
        macs::record(1);
        self.s.atan2(self.c)
    }

    /// Rotation composition (`RR`).
    pub fn compose(&self, rhs: &Rot2) -> Rot2 {
        macs::record(4);
        Rot2 {
            c: self.c * rhs.c - self.s * rhs.s,
            s: self.s * rhs.c + self.c * rhs.s,
        }
    }

    /// Transpose / inverse rotation (`RT`).
    pub fn transpose(&self) -> Rot2 {
        Rot2 {
            c: self.c,
            s: -self.s,
        }
    }

    /// Rotates a 2-vector (`RV`).
    pub fn rotate(&self, v: [f64; 2]) -> [f64; 2] {
        macs::record(4);
        [self.c * v[0] - self.s * v[1], self.s * v[0] + self.c * v[1]]
    }

    /// Row-major 2×2 matrix view.
    pub fn matrix(&self) -> [[f64; 2]; 2] {
        [[self.c, -self.s], [self.s, self.c]]
    }

    /// Conversion to a dense [`Mat`].
    pub fn to_mat(&self) -> Mat {
        Mat::from_rows(&[&[self.c, -self.s], &[self.s, self.c]])
    }
}

/// The 2D analogue of the skew operator: the so(2) generator
/// `J = [[0, −1], [1, 0]]`, satisfying `dR/dθ = R·J`.
pub fn generator() -> Mat {
    Mat::from_rows(&[&[0.0, -1.0], &[1.0, 0.0]])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_exp_roundtrip() {
        for theta in [-3.0, -0.5, 0.0, 0.7, 3.1] {
            assert!((Rot2::exp(theta).log() - theta).abs() < 1e-12);
        }
    }

    #[test]
    fn log_wraps_to_principal_branch() {
        let theta = 3.0 * std::f64::consts::PI; // equivalent to π
        let back = Rot2::exp(theta).log();
        assert!((back.abs() - std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn compose_adds_angles() {
        let r = Rot2::exp(0.3).compose(&Rot2::exp(0.4));
        assert!((r.log() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn transpose_is_inverse() {
        let r = Rot2::exp(1.2);
        assert!(r.compose(&r.transpose()).log().abs() < 1e-12);
    }

    #[test]
    fn rotate_preserves_norm() {
        let r = Rot2::exp(0.9);
        let v = r.rotate([3.0, 4.0]);
        assert!(((v[0] * v[0] + v[1] * v[1]).sqrt() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn generator_is_derivative_of_rotation() {
        // d(Rv)/dθ == R J v
        let theta: f64 = 0.6;
        let h = 1e-7;
        let v = [1.3, -0.4];
        let r = Rot2::exp(theta);
        let r2 = Rot2::exp(theta + h);
        let numeric = [
            (r2.rotate(v)[0] - r.rotate(v)[0]) / h,
            (r2.rotate(v)[1] - r.rotate(v)[1]) / h,
        ];
        let j = generator();
        let jv = j.mul_vec(&orianna_math::Vec64::from_slice(&v));
        let analytic = r.rotate([jv[0], jv[1]]);
        assert!((numeric[0] - analytic[0]).abs() < 1e-5);
        assert!((numeric[1] - analytic[1]).abs() < 1e-5);
    }
}
