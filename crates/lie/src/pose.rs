//! The unified pose representation `<so(n), T(n)>` (paper Sec. 4.2).
//!
//! A pose stores its orientation as a Lie-algebra vector (`so(n)`) and its
//! position as a plain translation vector (`T(n)`). Composition `⊕` and
//! difference `⊖` are the paper's Equ. 2, treated as *primitive operations*
//! from which all robot kinematics in the factor library are built:
//!
//! ```text
//! ξ₁ ⊕ ξ₂ = < Log(R₁R₂),  t₁ + R₁t₂ >
//! ξ₁ ⊖ ξ₂ = < Log(R₂ᵀR₁), R₂ᵀ(t₁ − t₂) >
//! ```
//!
//! Tangent-vector convention throughout the workspace: orientation
//! components first, then translation — `[δφ | δt]`, giving dimension 3 for
//! [`Pose2`] and 6 for [`Pose3`]. The retraction used by Gauss-Newton is
//! right-multiplicative: `retract(x, δ) = x ⊕ <δφ, δt>`.

use crate::so2::Rot2;
use crate::so3::Rot3;

/// A planar pose in the unified representation: `<so(2), T(2)>`.
///
/// # Example
/// ```
/// use orianna_lie::Pose2;
/// let a = Pose2::new(std::f64::consts::FRAC_PI_2, 0.0, 0.0);
/// let b = Pose2::new(0.0, 1.0, 0.0);
/// let c = a.compose(&b);
/// assert!((c.y() - 1.0).abs() < 1e-12); // forward motion rotated 90°
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Pose2 {
    theta: f64,
    t: [f64; 2],
}

impl Pose2 {
    /// Tangent dimension (1 orientation + 2 translation).
    pub const DIM: usize = 3;

    /// Creates a pose from heading `theta` and position `(x, y)`.
    pub fn new(theta: f64, x: f64, y: f64) -> Self {
        Self { theta, t: [x, y] }
    }

    /// The identity pose.
    pub fn identity() -> Self {
        Self::default()
    }

    /// Heading angle (the so(2) component).
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// X position.
    pub fn x(&self) -> f64 {
        self.t[0]
    }

    /// Y position.
    pub fn y(&self) -> f64 {
        self.t[1]
    }

    /// Translation component.
    pub fn translation(&self) -> [f64; 2] {
        self.t
    }

    /// Rotation component as an SO(2) element.
    pub fn rotation(&self) -> Rot2 {
        Rot2::exp(self.theta)
    }

    /// Pose composition `self ⊕ rhs` (Equ. 2).
    pub fn compose(&self, rhs: &Pose2) -> Pose2 {
        let r1 = self.rotation();
        let r2 = rhs.rotation();
        let rt = r1.rotate(rhs.t);
        Pose2 {
            theta: r1.compose(&r2).log(),
            t: [self.t[0] + rt[0], self.t[1] + rt[1]],
        }
    }

    /// Pose difference `self ⊖ rhs` (Equ. 2): the motion that takes `rhs`
    /// to `self`, expressed in `rhs`'s frame.
    pub fn between(&self, rhs: &Pose2) -> Pose2 {
        let r1 = self.rotation();
        let r2t = rhs.rotation().transpose();
        let dt = [self.t[0] - rhs.t[0], self.t[1] - rhs.t[1]];
        Pose2 {
            theta: r2t.compose(&r1).log(),
            t: r2t.rotate(dt),
        }
    }

    /// Group inverse: `p.inverse().compose(&p)` is the identity.
    pub fn inverse(&self) -> Pose2 {
        Pose2::identity().between(self)
    }

    /// Right-multiplicative retraction: `self ⊕ <δ[0], (δ[1], δ[2])>`.
    pub fn retract(&self, delta: &[f64]) -> Pose2 {
        debug_assert_eq!(delta.len(), Self::DIM);
        self.compose(&Pose2::new(delta[0], delta[1], delta[2]))
    }

    /// Local coordinates of `other` relative to `self`
    /// (inverse of [`Pose2::retract`]).
    pub fn local(&self, other: &Pose2) -> [f64; 3] {
        let d = other.between(self);
        [d.theta, d.t[0], d.t[1]]
    }

    /// Euclidean distance between positions.
    pub fn translation_distance(&self, other: &Pose2) -> f64 {
        let dx = self.t[0] - other.t[0];
        let dy = self.t[1] - other.t[1];
        (dx * dx + dy * dy).sqrt()
    }
}

/// A spatial pose in the unified representation: `<so(3), T(3)>`.
///
/// # Example
/// ```
/// use orianna_lie::Pose3;
/// let p = Pose3::from_parts([0.1, 0.0, 0.0], [1.0, 2.0, 3.0]);
/// let q = p.compose(&p.inverse());
/// assert!(q.translation().iter().all(|v| v.abs() < 1e-12));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Pose3 {
    phi: [f64; 3],
    t: [f64; 3],
}

impl Pose3 {
    /// Tangent dimension (3 orientation + 3 translation).
    pub const DIM: usize = 6;

    /// Creates a pose from an so(3) vector and a translation.
    pub fn from_parts(phi: [f64; 3], t: [f64; 3]) -> Self {
        Self { phi, t }
    }

    /// The identity pose.
    pub fn identity() -> Self {
        Self::default()
    }

    /// Orientation as an so(3) vector.
    pub fn phi(&self) -> [f64; 3] {
        self.phi
    }

    /// Translation component.
    pub fn translation(&self) -> [f64; 3] {
        self.t
    }

    /// Rotation component as an SO(3) element.
    pub fn rotation(&self) -> Rot3 {
        Rot3::exp(self.phi)
    }

    /// Pose composition `self ⊕ rhs` (Equ. 2).
    pub fn compose(&self, rhs: &Pose3) -> Pose3 {
        let r1 = self.rotation();
        let r2 = rhs.rotation();
        let rt = r1.rotate(rhs.t);
        Pose3 {
            phi: r1.compose(&r2).log(),
            t: [self.t[0] + rt[0], self.t[1] + rt[1], self.t[2] + rt[2]],
        }
    }

    /// Pose difference `self ⊖ rhs` (Equ. 2).
    pub fn between(&self, rhs: &Pose3) -> Pose3 {
        let r1 = self.rotation();
        let r2t = rhs.rotation().transpose();
        let dt = [
            self.t[0] - rhs.t[0],
            self.t[1] - rhs.t[1],
            self.t[2] - rhs.t[2],
        ];
        Pose3 {
            phi: r2t.compose(&r1).log(),
            t: r2t.rotate(dt),
        }
    }

    /// Group inverse.
    pub fn inverse(&self) -> Pose3 {
        Pose3::identity().between(self)
    }

    /// Right-multiplicative retraction:
    /// `self ⊕ <(δ[0..3]), (δ[3..6])>`.
    pub fn retract(&self, delta: &[f64]) -> Pose3 {
        debug_assert_eq!(delta.len(), Self::DIM);
        self.compose(&Pose3::from_parts(
            [delta[0], delta[1], delta[2]],
            [delta[3], delta[4], delta[5]],
        ))
    }

    /// Local coordinates of `other` relative to `self`
    /// (inverse of [`Pose3::retract`]).
    pub fn local(&self, other: &Pose3) -> [f64; 6] {
        let d = other.between(self);
        [d.phi[0], d.phi[1], d.phi[2], d.t[0], d.t[1], d.t[2]]
    }

    /// Euclidean distance between positions.
    pub fn translation_distance(&self, other: &Pose3) -> f64 {
        let dx = self.t[0] - other.t[0];
        let dy = self.t[1] - other.t[1];
        let dz = self.t[2] - other.t[2];
        (dx * dx + dy * dy + dz * dz).sqrt()
    }

    /// Rotational distance: the angle of the relative rotation.
    pub fn rotation_distance(&self, other: &Pose3) -> f64 {
        let d = self.between(other).phi;
        (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-10;

    fn approx_pose2(a: &Pose2, b: &Pose2) -> bool {
        (a.theta() - b.theta()).abs() < TOL && a.translation_distance(b) < TOL
    }

    fn approx_pose3(a: &Pose3, b: &Pose3) -> bool {
        a.rotation_distance(b) < TOL && a.translation_distance(b) < TOL
    }

    #[test]
    fn pose2_identity_is_neutral() {
        let p = Pose2::new(0.3, 1.0, -2.0);
        assert!(approx_pose2(&p.compose(&Pose2::identity()), &p));
        assert!(approx_pose2(&Pose2::identity().compose(&p), &p));
    }

    #[test]
    fn pose2_between_inverts_compose() {
        let a = Pose2::new(0.3, 1.0, 2.0);
        let b = Pose2::new(-0.8, -0.5, 0.7);
        let c = a.compose(&b);
        assert!(approx_pose2(&c.between(&a), &b));
    }

    #[test]
    fn pose2_inverse() {
        let p = Pose2::new(1.1, 3.0, -1.0);
        assert!(approx_pose2(&p.compose(&p.inverse()), &Pose2::identity()));
        assert!(approx_pose2(&p.inverse().compose(&p), &Pose2::identity()));
    }

    #[test]
    fn pose2_associativity() {
        let a = Pose2::new(0.2, 1.0, 0.0);
        let b = Pose2::new(-0.4, 0.0, 1.0);
        let c = Pose2::new(0.9, -1.0, 2.0);
        let lhs = a.compose(&b).compose(&c);
        let rhs = a.compose(&b.compose(&c));
        assert!(approx_pose2(&lhs, &rhs));
    }

    #[test]
    fn pose2_retract_local_roundtrip() {
        let p = Pose2::new(0.5, 1.0, 2.0);
        let delta = [0.01, -0.02, 0.03];
        let q = p.retract(&delta);
        let back = p.local(&q);
        for i in 0..3 {
            assert!((back[i] - delta[i]).abs() < TOL);
        }
    }

    #[test]
    fn pose3_identity_is_neutral() {
        let p = Pose3::from_parts([0.1, -0.2, 0.3], [1.0, 2.0, 3.0]);
        assert!(approx_pose3(&p.compose(&Pose3::identity()), &p));
        assert!(approx_pose3(&Pose3::identity().compose(&p), &p));
    }

    #[test]
    fn pose3_between_inverts_compose() {
        let a = Pose3::from_parts([0.3, 0.1, -0.2], [1.0, 2.0, 3.0]);
        let b = Pose3::from_parts([-0.1, 0.4, 0.2], [-0.5, 0.7, 1.1]);
        let c = a.compose(&b);
        assert!(approx_pose3(&c.between(&a), &b));
    }

    #[test]
    fn pose3_inverse() {
        let p = Pose3::from_parts([0.5, -0.6, 0.7], [3.0, -1.0, 2.0]);
        assert!(approx_pose3(&p.compose(&p.inverse()), &Pose3::identity()));
        assert!(approx_pose3(&p.inverse().compose(&p), &Pose3::identity()));
    }

    #[test]
    fn pose3_associativity() {
        let a = Pose3::from_parts([0.2, 0.0, 0.1], [1.0, 0.0, 0.0]);
        let b = Pose3::from_parts([-0.4, 0.3, 0.0], [0.0, 1.0, 0.0]);
        let c = Pose3::from_parts([0.1, -0.1, 0.9], [-1.0, 2.0, 0.5]);
        let lhs = a.compose(&b).compose(&c);
        let rhs = a.compose(&b.compose(&c));
        assert!(approx_pose3(&lhs, &rhs));
    }

    #[test]
    fn pose3_retract_local_roundtrip() {
        let p = Pose3::from_parts([0.4, 0.2, -0.3], [1.0, 2.0, 3.0]);
        let delta = [0.01, -0.02, 0.03, 0.1, -0.1, 0.2];
        let q = p.retract(&delta);
        let back = p.local(&q);
        for i in 0..6 {
            assert!((back[i] - delta[i]).abs() < TOL, "{i}");
        }
    }

    #[test]
    fn pose3_between_matches_matrix_algebra() {
        // Compare a ⊖ b against the homogeneous-matrix computation
        // T_b⁻¹ T_a.
        let a = Pose3::from_parts([0.2, -0.1, 0.5], [1.0, -2.0, 0.5]);
        let b = Pose3::from_parts([-0.3, 0.4, 0.1], [0.3, 0.8, -1.2]);
        let d = a.between(&b);
        let rb_t = b.rotation().transpose();
        let expect_rot = rb_t.compose(&a.rotation());
        let dt = [
            a.translation()[0] - b.translation()[0],
            a.translation()[1] - b.translation()[1],
            a.translation()[2] - b.translation()[2],
        ];
        let expect_t = rb_t.rotate(dt);
        assert!(d
            .rotation()
            .transpose()
            .compose(&expect_rot)
            .log()
            .iter()
            .all(|v| v.abs() < TOL));
        for (got, want) in d.translation().iter().zip(&expect_t) {
            assert!((got - want).abs() < TOL);
        }
    }
}
