//! Property-based tests for the Lie-group kernels (ISSUE: conformance
//! harness, Lie oracle): exp/log round-trips, the adjoint identity
//! `Ad_g · ξ = Log(g · Exp(ξ) · g⁻¹)` on SO(2)/SO(3)/SE(3), and the
//! quaternion renormalization drift the unified representation avoids.

use orianna_lie::{Quat, Rot2, Rot3, Se3Tangent, SE3};
use proptest::prelude::*;

fn angle() -> impl Strategy<Value = f64> {
    // Stay away from the ±π cut where log is discontinuous.
    -2.9f64..2.9
}

fn small() -> impl Strategy<Value = f64> {
    -0.9f64..0.9
}

fn mat3_diff(a: &Rot3, b: &Rot3) -> f64 {
    let (am, bm) = (a.matrix(), b.matrix());
    let mut d: f64 = 0.0;
    for r in 0..3 {
        for c in 0..3 {
            d = d.max((am[r][c] - bm[r][c]).abs());
        }
    }
    d
}

fn cross(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
    [
        a[1] * b[2] - a[2] * b[1],
        a[2] * b[0] - a[0] * b[2],
        a[0] * b[1] - a[1] * b[0],
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- exp(log(g)) = g ------------------------------------------------

    #[test]
    fn rot2_exp_log_roundtrip(theta in angle()) {
        let g = Rot2::exp(theta);
        prop_assert!((Rot2::exp(g.log()).log() - g.log()).abs() < 1e-12);
        prop_assert!((g.log() - theta).abs() < 1e-12);
    }

    #[test]
    fn rot3_exp_log_roundtrip(x in small(), y in small(), z in small()) {
        let g = Rot3::exp([1.2 * x, 1.2 * y, 1.2 * z]);
        let back = Rot3::exp(g.log());
        prop_assert!(mat3_diff(&g, &back) < 1e-9, "diff {}", mat3_diff(&g, &back));
    }

    #[test]
    fn se3_exp_log_roundtrip(
        rx in small(), ry in small(), rz in small(),
        px in small(), py in small(), pz in small(),
    ) {
        let g = Se3Tangent::new([2.0 * px, 2.0 * py, 2.0 * pz], [rx, ry, rz]).exp();
        let back = g.log().exp();
        prop_assert!((&g.to_mat() - &back.to_mat()).norm() < 1e-9);
    }

    // ---- Ad_g · ξ = Log(g · Exp(ξ) · g⁻¹) -------------------------------

    #[test]
    fn so2_adjoint_is_identity(theta in angle(), xi in small()) {
        // SO(2) is abelian, so conjugation is a no-op and Ad = 1.
        let g = Rot2::exp(theta);
        let conj = g.compose(&Rot2::exp(xi)).compose(&g.transpose());
        prop_assert!((conj.log() - xi).abs() < 1e-12);
    }

    #[test]
    fn so3_adjoint_is_rotation(
        gx in small(), gy in small(), gz in small(),
        x in small(), y in small(), z in small(),
    ) {
        let g = Rot3::exp([gx, gy, gz]);
        let xi = [0.5 * x, 0.5 * y, 0.5 * z];
        let lhs = g.rotate(xi); // Ad_R = R for SO(3).
        let rhs = g.compose(&Rot3::exp(xi)).compose(&g.transpose()).log();
        for i in 0..3 {
            prop_assert!((lhs[i] - rhs[i]).abs() < 1e-9, "component {}: {} vs {}", i, lhs[i], rhs[i]);
        }
    }

    #[test]
    fn se3_adjoint_matches_conjugation(
        gx in small(), gy in small(), gz in small(),
        tx in small(), ty in small(), tz in small(),
        rx in small(), ry in small(), rz in small(),
        vx in small(), vy in small(), vz in small(),
    ) {
        let r = Rot3::exp([gx, gy, gz]);
        let t = [tx, ty, tz];
        let g = SE3::from_rt(&r, t);
        let rho = [0.5 * vx, 0.5 * vy, 0.5 * vz];
        let phi = [0.4 * rx, 0.4 * ry, 0.4 * rz];
        let xi = Se3Tangent::new(rho, phi);

        // Ad_g for the [ρ | φ] ordering: [[R, t^·R], [0, R]].
        let r_rho = r.rotate(rho);
        let r_phi = r.rotate(phi);
        let t_cross = cross(t, r_phi);
        let lhs = [
            r_rho[0] + t_cross[0],
            r_rho[1] + t_cross[1],
            r_rho[2] + t_cross[2],
            r_phi[0],
            r_phi[1],
            r_phi[2],
        ];

        let rhs = g.compose(&xi.exp()).compose(&g.inverse()).log().coords();
        for i in 0..6 {
            prop_assert!((lhs[i] - rhs[i]).abs() < 1e-9, "coord {}: {} vs {}", i, lhs[i], rhs[i]);
        }
    }

    // ---- Quaternion renormalization drift -------------------------------

    #[test]
    fn quat_drift_stays_bounded_and_renormalizes(
        x in small(), y in small(), z in small(),
    ) {
        let step = Quat::exp([0.01 * x, 0.01 * y, 0.01 * z]);
        let mut q = Quat::identity();
        for _ in 0..1000 {
            q = q.compose(&step);
        }
        // Unit-magnitude products of unit quaternions: drift is pure
        // floating-point accumulation, a few ULPs per Hamilton product.
        let drift = (q.norm() - 1.0).abs();
        prop_assert!(drift < 1e-11, "drift {}", drift);
        let n = q.normalized();
        prop_assert!((n.norm() - 1.0).abs() < 1e-15);
        // Renormalization must not move the rotation itself.
        let before = q.log();
        let after = n.log();
        for i in 0..3 {
            prop_assert!((before[i] - after[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn quat_rot3_roundtrip(x in small(), y in small(), z in small()) {
        let phi = [1.5 * x, 1.5 * y, 1.5 * z];
        let q = Quat::exp(phi);
        let r = Rot3::exp(phi);
        prop_assert!(mat3_diff(&q.to_rot3(), &r) < 1e-12);
        let q2 = Quat::from_rot3(&r);
        // q and −q represent the same rotation.
        prop_assert!(mat3_diff(&q2.to_rot3(), &r) < 1e-12);
    }
}
