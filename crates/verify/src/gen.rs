//! Seeded random factor-graph generation.
//!
//! Four graph families mirror the compiler-supported application shapes
//! (Tbl. 4): planar SLAM over SO(2), spatial SLAM over SO(3)/SE(3),
//! bundle-adjustment-style camera/landmark graphs, and flat-vector
//! trajectory-planning graphs. Every graph is a deterministic function of
//! its [`GenConfig`] — the differential oracles re-derive any failure from
//! the `(family, variables, density, seed)` tuple alone.

use orianna_graph::{
    BetweenFactor, CameraFactor, CameraModel, CollisionFactor, FactorGraph, GpsFactor, PriorFactor,
    SmoothFactor, VectorPriorFactor,
};
use orianna_lie::{Pose2, Pose3};
use orianna_math::Vec64;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated graph family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Planar pose chain (SO(2) orientation): prior + odometry betweens,
    /// random loop closures and GPS fixes.
    Pose2Slam,
    /// Spatial pose chain (SO(3)/SE(3)): prior + odometry betweens, loop
    /// closures and GPS fixes.
    Pose3Slam,
    /// Bundle-adjustment shape: posed cameras observing 3D landmarks,
    /// every landmark seen from at least two well-separated poses.
    CameraLandmark,
    /// Flat-vector planning: position/velocity states tied by smoothness
    /// factors, endpoint priors, and random obstacle hinges.
    Planning,
}

impl Family {
    /// All families, in oracle-sweep order.
    pub const ALL: [Family; 4] = [
        Family::Pose2Slam,
        Family::Pose3Slam,
        Family::CameraLandmark,
        Family::Planning,
    ];

    /// Stable display name.
    pub fn name(&self) -> &'static str {
        match self {
            Family::Pose2Slam => "pose2-slam",
            Family::Pose3Slam => "pose3-slam",
            Family::CameraLandmark => "camera-landmark",
            Family::Planning => "planning",
        }
    }
}

/// Parameters of one generated graph.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Which family to draw from.
    pub family: Family,
    /// Number of primary variables (poses / states). Landmark counts are
    /// derived from this.
    pub variables: usize,
    /// Probability in `[0, 1]` of each optional extra factor (loop
    /// closure, GPS fix, obstacle) being added — graph density knob.
    pub density: f64,
    /// RNG seed; equal configs generate identical graphs.
    pub seed: u64,
}

impl GenConfig {
    /// A size/density/seed point in the standard fuzz sweep.
    pub fn new(family: Family, variables: usize, density: f64, seed: u64) -> Self {
        Self {
            family,
            variables,
            density,
            seed,
        }
    }
}

/// Generates the factor graph described by `cfg`.
pub fn generate(cfg: &GenConfig) -> FactorGraph {
    let mut rng = StdRng::seed_from_u64(
        cfg.seed ^ (cfg.variables as u64) << 32 ^ (cfg.family.name().len() as u64),
    );
    let n = cfg.variables.max(2);
    match cfg.family {
        Family::Pose2Slam => pose2_slam(&mut rng, n, cfg.density),
        Family::Pose3Slam => pose3_slam(&mut rng, n, cfg.density),
        Family::CameraLandmark => camera_landmark(&mut rng, n, cfg.density),
        Family::Planning => planning(&mut rng, n, cfg.density),
    }
}

fn coin(rng: &mut StdRng, p: f64) -> bool {
    rng.gen_range(0.0..1.0) < p
}

fn pose2_slam(rng: &mut StdRng, n: usize, density: f64) -> FactorGraph {
    let mut g = FactorGraph::new();
    let mut ids = Vec::with_capacity(n);
    let mut truth = Vec::with_capacity(n);
    for i in 0..n {
        let p = Pose2::new(
            0.15 * i as f64 + rng.gen_range(-0.05..0.05),
            i as f64 * 0.8 + rng.gen_range(-0.1..0.1),
            rng.gen_range(-0.1..0.1),
        );
        truth.push(p);
        ids.push(g.add_pose2(p.retract(&[
            rng.gen_range(-0.05..0.05),
            rng.gen_range(-0.05..0.05),
            rng.gen_range(-0.05..0.05),
        ])));
    }
    g.add_factor(PriorFactor::pose2(ids[0], truth[0], 0.1));
    for i in 1..n {
        g.add_factor(BetweenFactor::pose2(
            ids[i - 1],
            ids[i],
            truth[i - 1].between(&truth[i]),
            0.2,
        ));
    }
    // Loop closures between non-adjacent poses.
    for j in 2..n {
        if coin(rng, density) {
            let i = rng.gen_range(0..j - 1);
            g.add_factor(BetweenFactor::pose2(
                ids[i],
                ids[j],
                truth[i].between(&truth[j]),
                0.3,
            ));
        }
    }
    // GPS fixes.
    for (i, &id) in ids.iter().enumerate() {
        if coin(rng, density * 0.5) {
            let t = truth[i].translation();
            g.add_factor(GpsFactor::new(id, &t, 0.5));
        }
    }
    g
}

fn pose3_slam(rng: &mut StdRng, n: usize, density: f64) -> FactorGraph {
    let mut g = FactorGraph::new();
    let mut ids = Vec::with_capacity(n);
    let mut truth = Vec::with_capacity(n);
    for i in 0..n {
        let p = Pose3::from_parts(
            [
                rng.gen_range(-0.2..0.2),
                rng.gen_range(-0.2..0.2),
                rng.gen_range(-0.2..0.2),
            ],
            [
                i as f64 * 0.9,
                rng.gen_range(-0.3..0.3),
                rng.gen_range(-0.3..0.3),
            ],
        );
        truth.push(p.clone());
        ids.push(g.add_pose3(p.retract(&[
            rng.gen_range(-0.03..0.03),
            rng.gen_range(-0.03..0.03),
            rng.gen_range(-0.03..0.03),
            rng.gen_range(-0.05..0.05),
            rng.gen_range(-0.05..0.05),
            rng.gen_range(-0.05..0.05),
        ])));
    }
    g.add_factor(PriorFactor::pose3(ids[0], truth[0].clone(), 0.1));
    for i in 1..n {
        g.add_factor(BetweenFactor::pose3(
            ids[i - 1],
            ids[i],
            truth[i - 1].between(&truth[i]),
            0.2,
        ));
    }
    for j in 2..n {
        if coin(rng, density) {
            let i = rng.gen_range(0..j - 1);
            g.add_factor(BetweenFactor::pose3(
                ids[i],
                ids[j],
                truth[i].between(&truth[j]),
                0.3,
            ));
        }
    }
    for (i, &id) in ids.iter().enumerate() {
        if coin(rng, density * 0.5) {
            let t = truth[i].translation();
            g.add_factor(GpsFactor::new(id, &t, 0.5));
        }
    }
    g
}

fn camera_landmark(rng: &mut StdRng, n: usize, density: f64) -> FactorGraph {
    let mut g = FactorGraph::new();
    let model = CameraModel::default();
    let num_poses = (n / 2).clamp(2, 6);
    let num_landmarks = (n - num_poses).max(1);
    let mut poses = Vec::with_capacity(num_poses);
    let mut pose_ids = Vec::with_capacity(num_poses);
    for i in 0..num_poses {
        // Well-separated camera line looking down +z.
        let p = Pose3::from_parts(
            [
                rng.gen_range(-0.05..0.05),
                rng.gen_range(-0.05..0.05),
                rng.gen_range(-0.05..0.05),
            ],
            [i as f64 * 0.8, rng.gen_range(-0.2..0.2), 0.0],
        );
        poses.push(p.clone());
        let id = g.add_pose3(p.retract(&[
            rng.gen_range(-0.01..0.01),
            rng.gen_range(-0.01..0.01),
            rng.gen_range(-0.01..0.01),
            rng.gen_range(-0.02..0.02),
            rng.gen_range(-0.02..0.02),
            rng.gen_range(-0.02..0.02),
        ]));
        pose_ids.push(id);
        // Every pose carries a prior so the gauge is fixed regardless of
        // which observations the density knob keeps.
        g.add_factor(PriorFactor::pose3(id, p, 0.05));
    }
    for _ in 0..num_landmarks {
        // Landmarks well in front of the camera line.
        let l = [
            rng.gen_range(-1.0..(num_poses as f64)),
            rng.gen_range(-1.0..1.0),
            rng.gen_range(3.0..6.0),
        ];
        let lid = g.add_point3([
            l[0] + rng.gen_range(-0.05..0.05),
            l[1] + rng.gen_range(-0.05..0.05),
            l[2] + rng.gen_range(-0.05..0.05),
        ]);
        // At least two observations from distinct poses keep the landmark
        // fully constrained; extras follow the density knob.
        let first = rng.gen_range(0..num_poses);
        let mut second = rng.gen_range(0..num_poses - 1);
        if second >= first {
            second += 1;
        }
        for (pi, p) in poses.iter().enumerate() {
            let must = pi == first || pi == second;
            if !must && !coin(rng, density) {
                continue;
            }
            let t = p.translation();
            let pc = p
                .rotation()
                .transpose()
                .rotate([l[0] - t[0], l[1] - t[1], l[2] - t[2]]);
            if let Some(uv) = model.project(pc) {
                let px = [
                    uv[0] + rng.gen_range(-1.0..1.0),
                    uv[1] + rng.gen_range(-1.0..1.0),
                ];
                g.add_factor(CameraFactor::new(pose_ids[pi], lid, px, model, 1.0));
            }
        }
    }
    g
}

fn planning(rng: &mut StdRng, n: usize, density: f64) -> FactorGraph {
    let mut g = FactorGraph::new();
    let dim = 4; // [x, y, vx, vy]
    let mut ids = Vec::with_capacity(n);
    for i in 0..n {
        ids.push(g.add_vector(Vec64::from_slice(&[
            i as f64 + rng.gen_range(-0.2..0.2),
            rng.gen_range(-0.5..0.5),
            1.0 + rng.gen_range(-0.1..0.1),
            rng.gen_range(-0.1..0.1),
        ])));
    }
    g.add_factor(VectorPriorFactor::new(
        ids[0],
        Vec64::from_slice(&[0.0, 0.0, 1.0, 0.0]),
        0.1,
    ));
    g.add_factor(VectorPriorFactor::new(
        ids[n - 1],
        Vec64::from_slice(&[(n - 1) as f64, 0.5, 1.0, 0.0]),
        0.1,
    ));
    for w in ids.windows(2) {
        g.add_factor(SmoothFactor::new(w[0], w[1], dim / 2, 1.0, 0.3));
    }
    for (i, &id) in ids.iter().enumerate() {
        if coin(rng, density) {
            // An obstacle near — but not on top of — the state.
            let c = [i as f64 + rng.gen_range(0.5..1.0), rng.gen_range(0.6..1.2)];
            g.add_factor(CollisionFactor::new(id, dim / 2, vec![(c, 0.5)], 0.3, 0.5));
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for family in Family::ALL {
            let cfg = GenConfig::new(family, 6, 0.5, 1234);
            let a = generate(&cfg);
            let b = generate(&cfg);
            assert_eq!(a.num_variables(), b.num_variables(), "{}", family.name());
            assert_eq!(a.num_factors(), b.num_factors(), "{}", family.name());
            assert!(
                (a.total_error() - b.total_error()).abs() < 1e-15,
                "{}",
                family.name()
            );
        }
    }

    #[test]
    fn seeds_change_the_graph() {
        let a = generate(&GenConfig::new(Family::Pose2Slam, 8, 0.6, 1));
        let b = generate(&GenConfig::new(Family::Pose2Slam, 8, 0.6, 2));
        assert!((a.total_error() - b.total_error()).abs() > 1e-12);
    }

    #[test]
    fn density_zero_still_yields_solvable_graphs() {
        for family in Family::ALL {
            let g = generate(&GenConfig::new(family, 5, 0.0, 99));
            assert!(
                g.num_factors() >= g.num_variables().min(2),
                "{}",
                family.name()
            );
        }
    }
}
