//! Differential oracle for the Bayes-tree incremental solver.
//!
//! The [`orianna_solver::IncrementalSolver`] answers every update by
//! re-eliminating only the affected cliques and back-substituting only
//! where deltas move. The oracle holds it to the ground truth it is
//! supposed to shortcut: after **every** operation of a streaming
//! sequence — factor-chunk updates, fluid relinearizations, oldest-first
//! marginalizations — the solver's Δ must match a full batch elimination
//! of the *same* cached problem (the solver's own live factors,
//! linearized at the solver's own linearization point, eliminated over
//! the active variables in id order) to within `tol`.
//!
//! The batch reference runs through [`orianna_solver::SolvePlan`] with
//! [`Parallelism::default()`], so the sweep inherits the
//! `ORIANNA_THREADS` / `ORIANNA_NO_SIMD` CI matrix: the incremental path
//! is checked against every parallel schedule, not just the serial one.
//!
//! Sequences are deterministic in `(GenConfig, ops_seed)`: the graph
//! comes from [`crate::gen`], the chunk boundaries are drawn from the
//! prefixes that leave no variable unconstrained, and the interleaved
//! relinearize/marginalize decisions come from the ops RNG.

use orianna_graph::{Factor, LinearFactor, LinearSystem, Values, VarId};
use orianna_math::Parallelism;
use orianna_solver::{IncrementalSolver, SolvePlan};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

use crate::gen::{generate, GenConfig};

/// Default tolerance on `‖Δ_incremental − Δ_batch‖₂`.
pub const INCREMENTAL_TOL: f64 = 1e-9;

/// One divergence between the incremental solver and the batch oracle.
#[derive(Debug, Clone)]
pub struct IncrementalViolation {
    /// Graph configuration that produced the failure.
    pub config: GenConfig,
    /// Seed of the operation sequence.
    pub ops_seed: u64,
    /// Index of the failing operation in the sequence.
    pub step: usize,
    /// Human-readable description of the failing operation.
    pub op: String,
    /// What went wrong.
    pub kind: ViolationKind,
}

/// The way an operation diverged from the oracle.
#[derive(Debug, Clone)]
pub enum ViolationKind {
    /// The incremental Δ differs from batch elimination.
    DeltaMismatch {
        /// `‖Δ_incremental − Δ_batch‖₂`.
        diff: f64,
        /// The tolerance that was exceeded.
        tol: f64,
    },
    /// The incremental solver errored where the batch oracle succeeds.
    SolverError(String),
    /// The batch oracle errored where the incremental solver succeeds.
    ReferenceError(String),
}

impl std::fmt::Display for IncrementalViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} vars={} density={} seed={} ops_seed={}: step {} ({}): ",
            self.config.family.name(),
            self.config.variables,
            self.config.density,
            self.config.seed,
            self.ops_seed,
            self.step,
            self.op
        )?;
        match &self.kind {
            ViolationKind::DeltaMismatch { diff, tol } => {
                write!(f, "delta mismatch {diff:e} > {tol:e}")
            }
            ViolationKind::SolverError(e) => write!(f, "incremental solver error: {e}"),
            ViolationKind::ReferenceError(e) => write!(f, "batch reference error: {e}"),
        }
    }
}

/// Statistics of one passing sequence.
#[derive(Debug, Clone, Default)]
pub struct IncrementalReport {
    /// Chunked factor updates performed.
    pub updates: usize,
    /// Relinearizations performed.
    pub relinearizations: usize,
    /// Variables marginalized out.
    pub marginalizations: usize,
    /// Worst observed `‖Δ_incremental − Δ_batch‖₂` across all checks.
    pub max_diff: f64,
    /// Cliques re-eliminated across the whole sequence.
    pub cliques_reeliminated: usize,
    /// Full-rebuild fallbacks taken.
    pub full_rebuilds: usize,
}

/// Batch ground truth for the solver's current problem: its live factors
/// linearized at its linearization point, eliminated over the active
/// variables in id order, fully back-substituted.
pub fn batch_reference(solver: &IncrementalSolver) -> Result<orianna_math::Vec64, String> {
    let lin_point = solver.lin_point();
    let factors: Vec<LinearFactor> = solver
        .factors()
        .map(|f| {
            let (blocks, err) = f.linearize(lin_point);
            LinearFactor {
                keys: f.keys().to_vec(),
                blocks,
                rhs: -&err,
            }
        })
        .collect();
    let var_dims: Vec<usize> = (0..lin_point.len())
        .map(|i| lin_point.get(VarId(i)).dim())
        .collect();
    let sys = LinearSystem { factors, var_dims };
    let order = solver.active_variables();
    let plan = SolvePlan::for_system(&sys, &order).map_err(|e| e.to_string())?;
    let (bn, _) = plan
        .execute(&sys, &Parallelism::default())
        .map_err(|e| e.to_string())?;
    bn.back_substitute().map_err(|e| e.to_string())
}

/// Prefix boundaries after which no variable referenced so far is left
/// unconstrained: the chunk cut points a streaming front-end could
/// legally emit. Determined by running a real (serial) elimination of
/// each prefix at the graph's initial values.
fn valid_boundaries(factors: &[Arc<dyn Factor>], init: &Values) -> Vec<usize> {
    let mut boundaries = Vec::new();
    for k in 1..=factors.len() {
        let prefix = &factors[..k];
        let max_key = prefix
            .iter()
            .flat_map(|f| f.keys().iter().map(|v| v.0))
            .max()
            .unwrap_or(0);
        let lin: Vec<LinearFactor> = prefix
            .iter()
            .map(|f| {
                let (blocks, err) = f.linearize(init);
                LinearFactor {
                    keys: f.keys().to_vec(),
                    blocks,
                    rhs: -&err,
                }
            })
            .collect();
        let var_dims: Vec<usize> = (0..=max_key).map(|i| init.get(VarId(i)).dim()).collect();
        let sys = LinearSystem {
            factors: lin,
            var_dims,
        };
        let order: Vec<VarId> = (0..=max_key).map(VarId).collect();
        let solvable = SolvePlan::for_system(&sys, &order)
            .and_then(|p| p.execute(&sys, &Parallelism::serial()))
            .is_ok();
        if solvable {
            boundaries.push(k);
        }
    }
    boundaries
}

/// Drives one streaming sequence over the graph of `cfg` and checks the
/// incremental solver against [`batch_reference`] after every operation.
///
/// # Errors
/// Returns the first [`IncrementalViolation`], boxed (large type).
pub fn check_incremental(
    cfg: &GenConfig,
    ops_seed: u64,
    tol: f64,
) -> Result<IncrementalReport, Box<IncrementalViolation>> {
    let graph = generate(cfg);
    let factors: Vec<Arc<dyn Factor>> = graph.factors().to_vec();
    let init = graph.values();
    let boundaries = valid_boundaries(&factors, init);
    let mut rng = StdRng::seed_from_u64(ops_seed ^ 0x1ce1ce);

    // Random subset of the legal cut points; the full graph always ends
    // the stream.
    let mut cuts: Vec<usize> = boundaries
        .iter()
        .copied()
        .filter(|&b| b == factors.len() || rng.gen_range(0.0..1.0) < 0.4)
        .collect();
    if cuts.last() != Some(&factors.len()) {
        cuts.push(factors.len());
    }

    // Last factor index referencing each variable — a variable may be
    // marginalized only once the stream has passed all its factors.
    let num_vars = graph.num_variables();
    let mut last_ref = vec![0usize; num_vars];
    for (fi, f) in factors.iter().enumerate() {
        for k in f.keys() {
            last_ref[k.0] = fi;
        }
    }

    let mut solver = IncrementalSolver::new();
    let mut report = IncrementalReport::default();
    let mut added = 0usize;
    let mut sent = 0usize;
    let mut next_marg = 0usize;
    let mut step = 0usize;

    let check = |solver: &IncrementalSolver,
                 report: &mut IncrementalReport,
                 step: usize,
                 op: &str|
     -> Result<(), Box<IncrementalViolation>> {
        let reference = batch_reference(solver).map_err(|e| {
            Box::new(IncrementalViolation {
                config: *cfg,
                ops_seed,
                step,
                op: op.to_string(),
                kind: ViolationKind::ReferenceError(e),
            })
        })?;
        let diff = (solver.delta() - &reference).norm();
        report.max_diff = report.max_diff.max(diff);
        if diff > tol {
            return Err(Box::new(IncrementalViolation {
                config: *cfg,
                ops_seed,
                step,
                op: op.to_string(),
                kind: ViolationKind::DeltaMismatch { diff, tol },
            }));
        }
        Ok(())
    };

    for &cut in &cuts {
        // Add the variables the chunk needs (id order, graph's initial
        // estimates), then feed the chunk.
        let chunk = factors[sent..cut].to_vec();
        let max_key = chunk
            .iter()
            .flat_map(|f| f.keys().iter().map(|v| v.0))
            .max()
            .unwrap_or(0);
        while added <= max_key {
            solver.add_variable(init.get(VarId(added)).clone());
            added += 1;
        }
        let op = format!("update factors {sent}..{cut}");
        solver.update(chunk).map_err(|e| {
            Box::new(IncrementalViolation {
                config: *cfg,
                ops_seed,
                step,
                op: op.clone(),
                kind: ViolationKind::SolverError(e.to_string()),
            })
        })?;
        sent = cut;
        report.updates += 1;
        check(&solver, &mut report, step, &op)?;
        step += 1;

        if rng.gen_range(0.0..1.0) < 0.5 {
            let op = "relinearize".to_string();
            solver.relinearize().map_err(|e| {
                Box::new(IncrementalViolation {
                    config: *cfg,
                    ops_seed,
                    step,
                    op: op.clone(),
                    kind: ViolationKind::SolverError(e.to_string()),
                })
            })?;
            report.relinearizations += 1;
            check(&solver, &mut report, step, &op)?;
            step += 1;
        }

        // Oldest-first marginalization of variables whose factors have
        // all streamed past, keeping a live window of at least three.
        while next_marg < added
            && last_ref[next_marg] < sent
            && added - next_marg > 3
            && rng.gen_range(0.0..1.0) < 0.5
        {
            let v = VarId(next_marg);
            next_marg += 1;
            let op = format!("marginalize {v}");
            solver.marginalize(v).map_err(|e| {
                Box::new(IncrementalViolation {
                    config: *cfg,
                    ops_seed,
                    step,
                    op: op.clone(),
                    kind: ViolationKind::SolverError(e.to_string()),
                })
            })?;
            report.marginalizations += 1;
            check(&solver, &mut report, step, &op)?;
            step += 1;
        }
    }

    report.cliques_reeliminated = solver.cliques_reeliminated();
    report.full_rebuilds = solver.full_rebuilds();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::Family;

    #[test]
    fn boundaries_exist_for_every_family() {
        for family in Family::ALL {
            let cfg = GenConfig::new(family, 8, 0.4, 7);
            let g = generate(&cfg);
            let b = valid_boundaries(g.factors(), g.values());
            assert!(
                b.contains(&g.num_factors()),
                "{}: full graph must be a legal boundary",
                family.name()
            );
            assert!(!b.is_empty(), "{}", family.name());
        }
    }

    #[test]
    fn a_small_sequence_passes_each_family() {
        for family in Family::ALL {
            let cfg = GenConfig::new(family, 8, 0.4, 21);
            let rep = check_incremental(&cfg, 3, INCREMENTAL_TOL).unwrap_or_else(|v| panic!("{v}"));
            assert!(rep.updates >= 1, "{}", family.name());
        }
    }
}
