//! Cycle-level simulator invariants.
//!
//! These are properties any sane list-scheduled machine model must keep,
//! checked across sampled hardware configurations:
//!
//! 1. out-of-order issue never loses to in-order issue,
//! 2. no schedule beats the dependence-only critical path,
//! 3. adding units never slows a workload down,
//! 4. batch simulation is observationally identical to one-at-a-time
//!    simulation.

use orianna_compiler::UnitClass;
use orianna_hw::{critical_path_cycles, simulate, simulate_batch, HwConfig, IssuePolicy, Workload};
use orianna_math::Parallelism;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A violated simulator invariant.
#[derive(Debug, Clone)]
pub enum SimViolation {
    /// Out-of-order issue produced more cycles than in-order issue.
    OooSlowerThanInOrder {
        /// Offending configuration (unit counts, in `UnitClass::ALL` order).
        config: Vec<usize>,
        /// Out-of-order cycles.
        ooo: u64,
        /// In-order cycles.
        inorder: u64,
    },
    /// A schedule finished before the dependence-only critical path.
    BeatsCriticalPath {
        /// Offending configuration.
        config: Vec<usize>,
        /// Simulated cycles.
        cycles: u64,
        /// Critical-path lower bound.
        critical: u64,
    },
    /// Adding one unit of some class increased the makespan.
    NotMonotone {
        /// Base configuration.
        config: Vec<usize>,
        /// The class that was grown.
        class: UnitClass,
        /// Cycles before growing.
        before: u64,
        /// Cycles after growing.
        after: u64,
    },
    /// `simulate_batch` disagreed with per-workload `simulate`.
    BatchDiverges {
        /// Index of the diverging workload.
        index: usize,
        /// Batch cycles.
        batch: u64,
        /// Individual cycles.
        single: u64,
    },
}

impl std::fmt::Display for SimViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimViolation::OooSlowerThanInOrder {
                config,
                ooo,
                inorder,
            } => write!(f, "OoO {ooo} > in-order {inorder} cycles on {config:?}"),
            SimViolation::BeatsCriticalPath {
                config,
                cycles,
                critical,
            } => write!(
                f,
                "{cycles} cycles beats critical path {critical} on {config:?}"
            ),
            SimViolation::NotMonotone {
                config,
                class,
                before,
                after,
            } => write!(
                f,
                "adding a {class:?} unit to {config:?} regressed {before} → {after} cycles"
            ),
            SimViolation::BatchDiverges {
                index,
                batch,
                single,
            } => write!(f, "batch[{index}] {batch} != single {single} cycles"),
        }
    }
}

impl std::error::Error for SimViolation {}

fn counts_of(config: &HwConfig) -> Vec<usize> {
    UnitClass::ALL.iter().map(|c| config.count(*c)).collect()
}

/// Samples `n` hardware configurations with unit counts in `1..=max_units`.
pub fn sample_configs(n: usize, max_units: usize, seed: u64) -> Vec<HwConfig> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let pairs: Vec<(UnitClass, usize)> = UnitClass::ALL
                .iter()
                .map(|c| (*c, rng.gen_range(1..max_units + 1)))
                .collect();
            HwConfig::with_counts(&pairs)
        })
        .collect()
}

/// Checks invariants 1–3 on one workload across the given configurations.
///
/// # Errors
/// Returns the first [`SimViolation`] found.
pub fn check_workload(workload: &Workload<'_>, configs: &[HwConfig]) -> Result<(), SimViolation> {
    let critical = critical_path_cycles(workload);
    for config in configs {
        let ooo = simulate(workload, config, IssuePolicy::OutOfOrder);
        let inorder = simulate(workload, config, IssuePolicy::InOrder);
        if ooo.cycles > inorder.cycles {
            return Err(SimViolation::OooSlowerThanInOrder {
                config: counts_of(config),
                ooo: ooo.cycles,
                inorder: inorder.cycles,
            });
        }
        for report in [&ooo, &inorder] {
            if report.cycles < critical {
                return Err(SimViolation::BeatsCriticalPath {
                    config: counts_of(config),
                    cycles: report.cycles,
                    critical,
                });
            }
        }
        for class in UnitClass::ALL {
            let grown = simulate(workload, &config.plus_one(class), IssuePolicy::OutOfOrder);
            if grown.cycles > ooo.cycles {
                return Err(SimViolation::NotMonotone {
                    config: counts_of(config),
                    class,
                    before: ooo.cycles,
                    after: grown.cycles,
                });
            }
        }
    }
    Ok(())
}

/// Checks invariant 4: batch simulation ≡ per-workload simulation.
///
/// # Errors
/// Returns [`SimViolation::BatchDiverges`] on the first disagreement.
pub fn check_batch(
    workloads: &[Workload<'_>],
    config: &HwConfig,
    policy: IssuePolicy,
) -> Result<(), SimViolation> {
    let batch = simulate_batch(workloads, config, policy, &Parallelism::with_threads(4));
    for (i, (b, w)) in batch.iter().zip(workloads).enumerate() {
        let single = simulate(w, config, policy);
        if b.cycles != single.cycles
            || b.instructions != single.instructions
            || b.unit_busy != single.unit_busy
        {
            return Err(SimViolation::BatchDiverges {
                index: i,
                batch: b.cycles,
                single: single.cycles,
            });
        }
    }
    Ok(())
}
