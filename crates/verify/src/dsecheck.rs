//! DSE pruning and parallelism soundness.
//!
//! The hardware sweep ([`DseContext::sweep`]) promises that branch-and-
//! bound pruning and multi-threaded evaluation are pure optimizations:
//! the selected design, its simulation report, and the Pareto frontier
//! must be bitwise identical to a serial exhaustive sweep. This module
//! checks that promise differentially, the same way [`crate::oracle`]
//! checks the compiled numeric path against the analytic one.

use orianna_hw::{
    search_default, DseContext, HwConfig, Objective, ParetoPoint, Resources, SearchSpace,
    SimReport, SweepMode, SweepReport, Workload, WorkloadSet,
};
use orianna_math::Parallelism;

/// A violated DSE-equivalence invariant.
#[derive(Debug, Clone)]
pub enum DseViolation {
    /// One sweep found an in-budget winner, the other did not.
    WinnerExistence {
        /// Label of the diverging sweep (mode + thread count).
        sweep: String,
        /// Whether the serial exhaustive baseline found a winner.
        baseline_found: bool,
    },
    /// The sweeps picked different configurations.
    BestConfigDiverges {
        /// Label of the diverging sweep.
        sweep: String,
        /// Baseline unit counts, in `UnitClass::ALL` order.
        want: Vec<usize>,
        /// Diverging unit counts.
        got: Vec<usize>,
    },
    /// Same configuration, different simulation report.
    BestReportDiverges {
        /// Label of the diverging sweep.
        sweep: String,
        /// The report field that differs.
        field: &'static str,
    },
    /// The Pareto frontiers differ.
    FrontierDiverges {
        /// Label of the diverging sweep.
        sweep: String,
        /// Baseline frontier size.
        want_len: usize,
        /// Diverging frontier size.
        got_len: usize,
        /// First differing index (`want_len` when only the sizes differ).
        index: usize,
    },
    /// A sweep's counters do not add up to the candidate count.
    SkipAccounting {
        /// Label of the offending sweep.
        sweep: String,
        /// Candidates paid for with a scoreboard walk.
        evaluated: usize,
        /// Candidates answered from the memo.
        cache_hits: usize,
        /// Candidates pruned via admissible bounds.
        skipped_bound: usize,
        /// Candidates over the resource budget.
        skipped_budget: usize,
        /// Length of the candidate list.
        candidates: usize,
    },
    /// An exhaustive sweep reported bound skips.
    PhantomSkips {
        /// Label of the offending sweep.
        sweep: String,
        /// Number of bound skips reported.
        skipped_bound: usize,
    },
}

impl std::fmt::Display for DseViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DseViolation::WinnerExistence {
                sweep,
                baseline_found,
            } => write!(
                f,
                "{sweep}: baseline {} a winner but this sweep did not agree",
                if *baseline_found { "found" } else { "did not find" }
            ),
            DseViolation::BestConfigDiverges { sweep, want, got } => {
                write!(f, "{sweep}: best config {got:?} != baseline {want:?}")
            }
            DseViolation::BestReportDiverges { sweep, field } => {
                write!(f, "{sweep}: winner report field `{field}` diverges")
            }
            DseViolation::FrontierDiverges {
                sweep,
                want_len,
                got_len,
                index,
            } => write!(
                f,
                "{sweep}: frontier diverges at point {index} ({got_len} points vs baseline {want_len})"
            ),
            DseViolation::SkipAccounting {
                sweep,
                evaluated,
                cache_hits,
                skipped_bound,
                skipped_budget,
                candidates,
            } => write!(
                f,
                "{sweep}: {evaluated} evaluated + {cache_hits} cached + {skipped_bound} bound-skipped \
                 + {skipped_budget} budget-skipped != {candidates} candidates"
            ),
            DseViolation::PhantomSkips {
                sweep,
                skipped_bound,
            } => write!(f, "{sweep}: exhaustive sweep claims {skipped_bound} bound skips"),
        }
    }
}

impl std::error::Error for DseViolation {}

fn counts_of(config: &HwConfig) -> Vec<usize> {
    orianna_compiler::UnitClass::ALL
        .iter()
        .map(|c| config.count(*c))
        .collect()
}

/// Field-by-field report comparison (bitwise on floats: the sweep
/// promises identical reports, not merely close ones).
fn report_diff(a: &SimReport, b: &SimReport) -> Option<&'static str> {
    if a.cycles != b.cycles {
        return Some("cycles");
    }
    if a.time_ms.to_bits() != b.time_ms.to_bits() {
        return Some("time_ms");
    }
    if a.energy_mj.to_bits() != b.energy_mj.to_bits() {
        return Some("energy_mj");
    }
    if a.instructions != b.instructions {
        return Some("instructions");
    }
    if a.unit_busy != b.unit_busy {
        return Some("unit_busy");
    }
    if a.contention != b.contention {
        return Some("contention");
    }
    None
}

fn frontier_diff(want: &[ParetoPoint], got: &[ParetoPoint]) -> Option<usize> {
    for (i, (w, g)) in want.iter().zip(got.iter()).enumerate() {
        let same = w.config == g.config
            && w.cycles == g.cycles
            && w.energy_mj.to_bits() == g.energy_mj.to_bits()
            && w.resources == g.resources;
        if !same {
            return Some(i);
        }
    }
    if want.len() != got.len() {
        return Some(want.len().min(got.len()));
    }
    None
}

fn check_one(
    sweep: String,
    baseline: &SweepReport,
    baseline_frontier: &[ParetoPoint],
    got: &SweepReport,
    got_frontier: &[ParetoPoint],
    mode: SweepMode,
    candidates: usize,
) -> Result<(), DseViolation> {
    if got.evaluated + got.cache_hits + got.skipped_bound + got.skipped_budget != candidates {
        return Err(DseViolation::SkipAccounting {
            sweep,
            evaluated: got.evaluated,
            cache_hits: got.cache_hits,
            skipped_bound: got.skipped_bound,
            skipped_budget: got.skipped_budget,
            candidates,
        });
    }
    if mode == SweepMode::Exhaustive && got.skipped_bound != 0 {
        return Err(DseViolation::PhantomSkips {
            sweep,
            skipped_bound: got.skipped_bound,
        });
    }
    match (&baseline.best, &got.best) {
        (None, None) => {}
        (Some((wc, wr)), Some((gc, gr))) => {
            if wc != gc {
                return Err(DseViolation::BestConfigDiverges {
                    sweep,
                    want: counts_of(wc),
                    got: counts_of(gc),
                });
            }
            if let Some(field) = report_diff(wr, gr) {
                return Err(DseViolation::BestReportDiverges { sweep, field });
            }
        }
        (want, _) => {
            return Err(DseViolation::WinnerExistence {
                sweep,
                baseline_found: want.is_some(),
            });
        }
    }
    if let Some(index) = frontier_diff(baseline_frontier, got_frontier) {
        return Err(DseViolation::FrontierDiverges {
            sweep,
            want_len: baseline_frontier.len(),
            got_len: got_frontier.len(),
            index,
        });
    }
    Ok(())
}

/// Checks that every `(thread count, sweep mode)` combination — plus a
/// context built with the workspace-default parallelism, i.e. the
/// `ORIANNA_THREADS` knob — reproduces the serial exhaustive sweep
/// exactly: same winner, same report bits, same Pareto frontier.
///
/// # Errors
/// Returns the first [`DseViolation`] found.
pub fn check_dse(
    workload: &Workload<'_>,
    candidates: &[HwConfig],
    budget: &Resources,
    objective: Objective,
    threads: &[usize],
) -> Result<(), DseViolation> {
    let mut baseline_ctx = DseContext::with_parallelism(workload, Parallelism::serial());
    let baseline = baseline_ctx.sweep(candidates, budget, objective, SweepMode::Exhaustive);
    check_one(
        "serial exhaustive".to_string(),
        &baseline,
        baseline_ctx.frontier(),
        &baseline,
        baseline_ctx.frontier(),
        SweepMode::Exhaustive,
        candidates.len(),
    )?;

    let mut runs: Vec<(String, Parallelism)> = threads
        .iter()
        .map(|&t| (format!("{t} threads"), Parallelism::with_threads(t)))
        .collect();
    runs.push(("default parallelism".to_string(), Parallelism::default()));
    for (label, par) in runs {
        for mode in [SweepMode::Exhaustive, SweepMode::Pruned] {
            let mut ctx = DseContext::with_parallelism(workload, par);
            let got = ctx.sweep(candidates, budget, objective, mode);
            check_one(
                format!("{label}, {mode:?}"),
                &baseline,
                baseline_ctx.frontier(),
                &got,
                ctx.frontier(),
                mode,
                candidates.len(),
            )?;
        }
    }
    Ok(())
}

/// A violated search-DSE invariant ([`check_search`]).
#[derive(Debug, Clone)]
pub enum SearchViolation {
    /// The search reported a better objective than the exhaustive argmin
    /// over the same space — impossible: the search only ever simulates
    /// members of the space.
    BeatsExhaustive {
        /// The search's reported objective.
        search: f64,
        /// The exhaustive argmin objective.
        exhaustive: f64,
    },
    /// One of search and exhaustive found an in-budget winner, the other
    /// did not.
    WinnerExistence {
        /// Whether the search found a winner.
        search_found: bool,
        /// Whether the exhaustive sweep found a winner.
        exhaustive_found: bool,
    },
    /// A fresh pruned sweep over the recorded polish neighborhood did not
    /// reproduce the search's final answer bitwise.
    PolishDiverges {
        /// The field that diverges (`config`, `cycles`, `energy_mj`,
        /// `score`, or `existence`).
        field: &'static str,
    },
    /// The proposal dispositions do not add up.
    DedupAccounting {
        /// Proposals received from proposers.
        proposed: usize,
        /// Unique in-space, in-budget, un-gated proposals.
        accepted: usize,
        /// Rejected as duplicates.
        duplicates: usize,
        /// Rejected as outside the search space.
        out_of_space: usize,
        /// Rejected as over the resource budget.
        over_budget: usize,
        /// Skipped by the admissible bound gate.
        bound_gated: usize,
    },
    /// Fresh scoreboard walks diverged from unique memo entries — a
    /// re-proposed configuration was re-simulated instead of answered
    /// from the memo.
    MemoAccounting {
        /// Fresh scoreboard walks (`cache_misses` over all contexts).
        simulations: usize,
        /// Unique memo entries over all contexts.
        memo_len: usize,
    },
    /// Seed + search phase simulations diverged from
    /// `(seeded + accepted) × workloads`.
    SearchSimAccounting {
        /// Fresh walks recorded during the seed + search phases.
        search_simulations: usize,
        /// The expected count.
        expected: usize,
    },
    /// A re-run at a different thread count produced a different trial
    /// log — the search is not thread-count deterministic.
    LogDiverges {
        /// Label of the diverging run.
        run: String,
        /// First differing JSON line.
        line: usize,
    },
    /// A re-run at a different thread count produced different stats.
    StatsDiverge {
        /// Label of the diverging run.
        run: String,
    },
}

impl std::fmt::Display for SearchViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SearchViolation::BeatsExhaustive { search, exhaustive } => write!(
                f,
                "search objective {search} beats the exhaustive argmin {exhaustive} (impossible)"
            ),
            SearchViolation::WinnerExistence {
                search_found,
                exhaustive_found,
            } => write!(
                f,
                "search {} a winner, exhaustive {}",
                if *search_found {
                    "found"
                } else {
                    "did not find"
                },
                if *exhaustive_found {
                    "found one"
                } else {
                    "did not"
                },
            ),
            SearchViolation::PolishDiverges { field } => write!(
                f,
                "pruned sweep over the polish neighborhood diverges from the search answer \
                 in `{field}`"
            ),
            SearchViolation::DedupAccounting {
                proposed,
                accepted,
                duplicates,
                out_of_space,
                over_budget,
                bound_gated,
            } => write!(
                f,
                "{proposed} proposed != {accepted} accepted + {duplicates} duplicate + \
                 {out_of_space} out-of-space + {over_budget} over-budget + {bound_gated} gated"
            ),
            SearchViolation::MemoAccounting {
                simulations,
                memo_len,
            } => write!(
                f,
                "{simulations} fresh simulations != {memo_len} unique memo entries"
            ),
            SearchViolation::SearchSimAccounting {
                search_simulations,
                expected,
            } => write!(
                f,
                "{search_simulations} search-phase simulations != expected {expected}"
            ),
            SearchViolation::LogDiverges { run, line } => {
                write!(f, "{run}: trial log diverges from serial at line {line}")
            }
            SearchViolation::StatsDiverge { run } => {
                write!(f, "{run}: search stats diverge from serial")
            }
        }
    }
}

impl std::error::Error for SearchViolation {}

/// What [`check_search`] measured, for ratio assertions in tests
/// (e.g. `simulations × 10 ≤ space_size`).
#[derive(Debug, Clone)]
pub struct SearchSummary {
    /// The search's best objective, when a winner exists.
    pub best_score: Option<f64>,
    /// The exhaustive argmin objective (only computed on spaces with at
    /// most 4 096 configurations).
    pub exhaustive_score: Option<f64>,
    /// Fresh scoreboard walks the whole search (polish included) paid
    /// for, memo-hit-adjusted.
    pub simulations: usize,
    /// Size of the search space.
    pub space_size: u128,
}

fn objective_score(report: &SimReport, objective: Objective) -> f64 {
    match objective {
        Objective::Latency => report.cycles as f64,
        Objective::Energy => report.energy_mj,
    }
}

fn first_diff_line(a: &str, b: &str) -> usize {
    a.lines()
        .zip(b.lines())
        .position(|(x, y)| x != y)
        .unwrap_or_else(|| a.lines().count().min(b.lines().count()))
}

/// Checks the search-DSE oracles on one workload:
///
/// 1. **Never beats exhaustive**: on enumerable spaces (≤4 096
///    configurations) the search's objective can never be better than
///    the exhaustive argmin. The [`SearchSummary`] carries both scores
///    so callers can additionally pin zero regret where the budget
///    guarantees it.
/// 2. **Polish is exact**: a fresh serial pruned sweep over the recorded
///    polish neighborhood reproduces the search's final answer bitwise.
/// 3. **Accounting is exact**: proposal dispositions add up, fresh
///    simulations equal unique memo entries, and seed + search phase
///    walks equal `(seeded + accepted) × workloads`.
/// 4. **Thread-count determinism**: re-running the identical seed at
///    every requested thread count — plus workspace-default parallelism,
///    i.e. the `ORIANNA_THREADS` knob — reproduces the serial trial log
///    bitwise, stats included.
///
/// # Errors
/// Returns the first [`SearchViolation`] found.
pub fn check_search(
    workload: &Workload<'_>,
    space: &SearchSpace,
    budget: &Resources,
    objective: Objective,
    seed: u64,
    threads: &[usize],
) -> Result<SearchSummary, SearchViolation> {
    let mut set = WorkloadSet::single(
        "wl",
        DseContext::with_parallelism(workload, Parallelism::serial()),
        objective,
    );
    let outcome = search_default(&mut set, space, budget, seed);

    let s = outcome.stats;
    if s.proposed != s.accepted + s.duplicates + s.out_of_space + s.over_budget + s.bound_gated {
        return Err(SearchViolation::DedupAccounting {
            proposed: s.proposed,
            accepted: s.accepted,
            duplicates: s.duplicates,
            out_of_space: s.out_of_space,
            over_budget: s.over_budget,
            bound_gated: s.bound_gated,
        });
    }
    if set.simulations() != set.memo_len() {
        return Err(SearchViolation::MemoAccounting {
            simulations: set.simulations(),
            memo_len: set.memo_len(),
        });
    }
    let expected = (s.seeded + s.accepted) * set.len();
    if s.search_simulations != expected {
        return Err(SearchViolation::SearchSimAccounting {
            search_simulations: s.search_simulations,
            expected,
        });
    }

    // Polish oracle: one pruned sweep over everything the polish swept,
    // on a fresh context, must land on the same answer bitwise.
    if let Some(best) = &outcome.best {
        let mut fresh = DseContext::with_parallelism(workload, Parallelism::serial());
        let sweep = fresh.sweep(
            &outcome.polish_neighborhood,
            budget,
            objective,
            SweepMode::Pruned,
        );
        match sweep.best {
            None => return Err(SearchViolation::PolishDiverges { field: "existence" }),
            Some((config, report)) => {
                if config != best.config {
                    return Err(SearchViolation::PolishDiverges { field: "config" });
                }
                if report.cycles != best.per_workload[0].0 {
                    return Err(SearchViolation::PolishDiverges { field: "cycles" });
                }
                if report.energy_mj.to_bits() != best.per_workload[0].1.to_bits() {
                    return Err(SearchViolation::PolishDiverges { field: "energy_mj" });
                }
                if objective_score(&report, objective).to_bits() != best.score.to_bits() {
                    return Err(SearchViolation::PolishDiverges { field: "score" });
                }
            }
        }
    }

    // Exhaustive comparison, only on spaces small enough to enumerate.
    let mut exhaustive_score = None;
    if space.size() <= 4096 {
        let mut ex = DseContext::with_parallelism(workload, Parallelism::serial());
        let sweep = ex.sweep(&space.enumerate(), budget, objective, SweepMode::Exhaustive);
        match (&outcome.best, &sweep.best) {
            (None, None) => {}
            (Some(b), Some((_, report))) => {
                let want = objective_score(report, objective);
                if b.score < want {
                    return Err(SearchViolation::BeatsExhaustive {
                        search: b.score,
                        exhaustive: want,
                    });
                }
                exhaustive_score = Some(want);
            }
            (search, exhaustive) => {
                return Err(SearchViolation::WinnerExistence {
                    search_found: search.is_some(),
                    exhaustive_found: exhaustive.is_some(),
                });
            }
        }
    }

    // Thread-count determinism: bitwise-identical trial logs and stats.
    let base_log = outcome.log.to_json_lines();
    let mut runs: Vec<(String, Parallelism)> = threads
        .iter()
        .map(|&t| (format!("{t} threads"), Parallelism::with_threads(t)))
        .collect();
    runs.push(("default parallelism".to_string(), Parallelism::default()));
    for (run, par) in runs {
        let mut set_t =
            WorkloadSet::single("wl", DseContext::with_parallelism(workload, par), objective);
        let got = search_default(&mut set_t, space, budget, seed);
        let got_log = got.log.to_json_lines();
        if got_log != base_log {
            return Err(SearchViolation::LogDiverges {
                run,
                line: first_diff_line(&base_log, &got_log),
            });
        }
        if got.stats != outcome.stats {
            return Err(SearchViolation::StatsDiverge { run });
        }
    }

    Ok(SearchSummary {
        best_score: outcome.best.map(|b| b.score),
        exhaustive_score,
        simulations: set.simulations(),
        space_size: space.size(),
    })
}
