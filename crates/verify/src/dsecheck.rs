//! DSE pruning and parallelism soundness.
//!
//! The hardware sweep ([`DseContext::sweep`]) promises that branch-and-
//! bound pruning and multi-threaded evaluation are pure optimizations:
//! the selected design, its simulation report, and the Pareto frontier
//! must be bitwise identical to a serial exhaustive sweep. This module
//! checks that promise differentially, the same way [`crate::oracle`]
//! checks the compiled numeric path against the analytic one.

use orianna_hw::{
    DseContext, HwConfig, Objective, ParetoPoint, Resources, SimReport, SweepMode, SweepReport,
    Workload,
};
use orianna_math::Parallelism;

/// A violated DSE-equivalence invariant.
#[derive(Debug, Clone)]
pub enum DseViolation {
    /// One sweep found an in-budget winner, the other did not.
    WinnerExistence {
        /// Label of the diverging sweep (mode + thread count).
        sweep: String,
        /// Whether the serial exhaustive baseline found a winner.
        baseline_found: bool,
    },
    /// The sweeps picked different configurations.
    BestConfigDiverges {
        /// Label of the diverging sweep.
        sweep: String,
        /// Baseline unit counts, in `UnitClass::ALL` order.
        want: Vec<usize>,
        /// Diverging unit counts.
        got: Vec<usize>,
    },
    /// Same configuration, different simulation report.
    BestReportDiverges {
        /// Label of the diverging sweep.
        sweep: String,
        /// The report field that differs.
        field: &'static str,
    },
    /// The Pareto frontiers differ.
    FrontierDiverges {
        /// Label of the diverging sweep.
        sweep: String,
        /// Baseline frontier size.
        want_len: usize,
        /// Diverging frontier size.
        got_len: usize,
        /// First differing index (`want_len` when only the sizes differ).
        index: usize,
    },
    /// A sweep's counters do not add up to the candidate count.
    SkipAccounting {
        /// Label of the offending sweep.
        sweep: String,
        /// Candidates paid for with a scoreboard walk.
        evaluated: usize,
        /// Candidates answered from the memo.
        cache_hits: usize,
        /// Candidates pruned via admissible bounds.
        skipped_bound: usize,
        /// Candidates over the resource budget.
        skipped_budget: usize,
        /// Length of the candidate list.
        candidates: usize,
    },
    /// An exhaustive sweep reported bound skips.
    PhantomSkips {
        /// Label of the offending sweep.
        sweep: String,
        /// Number of bound skips reported.
        skipped_bound: usize,
    },
}

impl std::fmt::Display for DseViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DseViolation::WinnerExistence {
                sweep,
                baseline_found,
            } => write!(
                f,
                "{sweep}: baseline {} a winner but this sweep did not agree",
                if *baseline_found { "found" } else { "did not find" }
            ),
            DseViolation::BestConfigDiverges { sweep, want, got } => {
                write!(f, "{sweep}: best config {got:?} != baseline {want:?}")
            }
            DseViolation::BestReportDiverges { sweep, field } => {
                write!(f, "{sweep}: winner report field `{field}` diverges")
            }
            DseViolation::FrontierDiverges {
                sweep,
                want_len,
                got_len,
                index,
            } => write!(
                f,
                "{sweep}: frontier diverges at point {index} ({got_len} points vs baseline {want_len})"
            ),
            DseViolation::SkipAccounting {
                sweep,
                evaluated,
                cache_hits,
                skipped_bound,
                skipped_budget,
                candidates,
            } => write!(
                f,
                "{sweep}: {evaluated} evaluated + {cache_hits} cached + {skipped_bound} bound-skipped \
                 + {skipped_budget} budget-skipped != {candidates} candidates"
            ),
            DseViolation::PhantomSkips {
                sweep,
                skipped_bound,
            } => write!(f, "{sweep}: exhaustive sweep claims {skipped_bound} bound skips"),
        }
    }
}

impl std::error::Error for DseViolation {}

fn counts_of(config: &HwConfig) -> Vec<usize> {
    orianna_compiler::UnitClass::ALL
        .iter()
        .map(|c| config.count(*c))
        .collect()
}

/// Field-by-field report comparison (bitwise on floats: the sweep
/// promises identical reports, not merely close ones).
fn report_diff(a: &SimReport, b: &SimReport) -> Option<&'static str> {
    if a.cycles != b.cycles {
        return Some("cycles");
    }
    if a.time_ms.to_bits() != b.time_ms.to_bits() {
        return Some("time_ms");
    }
    if a.energy_mj.to_bits() != b.energy_mj.to_bits() {
        return Some("energy_mj");
    }
    if a.instructions != b.instructions {
        return Some("instructions");
    }
    if a.unit_busy != b.unit_busy {
        return Some("unit_busy");
    }
    if a.contention != b.contention {
        return Some("contention");
    }
    None
}

fn frontier_diff(want: &[ParetoPoint], got: &[ParetoPoint]) -> Option<usize> {
    for (i, (w, g)) in want.iter().zip(got.iter()).enumerate() {
        let same = w.config == g.config
            && w.cycles == g.cycles
            && w.energy_mj.to_bits() == g.energy_mj.to_bits()
            && w.resources == g.resources;
        if !same {
            return Some(i);
        }
    }
    if want.len() != got.len() {
        return Some(want.len().min(got.len()));
    }
    None
}

fn check_one(
    sweep: String,
    baseline: &SweepReport,
    baseline_frontier: &[ParetoPoint],
    got: &SweepReport,
    got_frontier: &[ParetoPoint],
    mode: SweepMode,
    candidates: usize,
) -> Result<(), DseViolation> {
    if got.evaluated + got.cache_hits + got.skipped_bound + got.skipped_budget != candidates {
        return Err(DseViolation::SkipAccounting {
            sweep,
            evaluated: got.evaluated,
            cache_hits: got.cache_hits,
            skipped_bound: got.skipped_bound,
            skipped_budget: got.skipped_budget,
            candidates,
        });
    }
    if mode == SweepMode::Exhaustive && got.skipped_bound != 0 {
        return Err(DseViolation::PhantomSkips {
            sweep,
            skipped_bound: got.skipped_bound,
        });
    }
    match (&baseline.best, &got.best) {
        (None, None) => {}
        (Some((wc, wr)), Some((gc, gr))) => {
            if wc != gc {
                return Err(DseViolation::BestConfigDiverges {
                    sweep,
                    want: counts_of(wc),
                    got: counts_of(gc),
                });
            }
            if let Some(field) = report_diff(wr, gr) {
                return Err(DseViolation::BestReportDiverges { sweep, field });
            }
        }
        (want, _) => {
            return Err(DseViolation::WinnerExistence {
                sweep,
                baseline_found: want.is_some(),
            });
        }
    }
    if let Some(index) = frontier_diff(baseline_frontier, got_frontier) {
        return Err(DseViolation::FrontierDiverges {
            sweep,
            want_len: baseline_frontier.len(),
            got_len: got_frontier.len(),
            index,
        });
    }
    Ok(())
}

/// Checks that every `(thread count, sweep mode)` combination — plus a
/// context built with the workspace-default parallelism, i.e. the
/// `ORIANNA_THREADS` knob — reproduces the serial exhaustive sweep
/// exactly: same winner, same report bits, same Pareto frontier.
///
/// # Errors
/// Returns the first [`DseViolation`] found.
pub fn check_dse(
    workload: &Workload<'_>,
    candidates: &[HwConfig],
    budget: &Resources,
    objective: Objective,
    threads: &[usize],
) -> Result<(), DseViolation> {
    let mut baseline_ctx = DseContext::with_parallelism(workload, Parallelism::serial());
    let baseline = baseline_ctx.sweep(candidates, budget, objective, SweepMode::Exhaustive);
    check_one(
        "serial exhaustive".to_string(),
        &baseline,
        baseline_ctx.frontier(),
        &baseline,
        baseline_ctx.frontier(),
        SweepMode::Exhaustive,
        candidates.len(),
    )?;

    let mut runs: Vec<(String, Parallelism)> = threads
        .iter()
        .map(|&t| (format!("{t} threads"), Parallelism::with_threads(t)))
        .collect();
    runs.push(("default parallelism".to_string(), Parallelism::default()));
    for (label, par) in runs {
        for mode in [SweepMode::Exhaustive, SweepMode::Pruned] {
            let mut ctx = DseContext::with_parallelism(workload, par);
            let got = ctx.sweep(candidates, budget, objective, mode);
            check_one(
                format!("{label}, {mode:?}"),
                &baseline,
                baseline_ctx.frontier(),
                &got,
                ctx.frontier(),
                mode,
                candidates.len(),
            )?;
        }
    }
    Ok(())
}
