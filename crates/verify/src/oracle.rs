//! Differential oracles: compiled pipeline vs analytic solver.
//!
//! A generated graph is pushed through both stacks and every intermediate
//! the two share is compared:
//!
//! 1. **Linearization** — per-factor whitened RHS and Jacobian blocks from
//!    the executed program registers vs [`FactorGraph::linearize`].
//! 2. **Elimination** — the per-variable conditional `(R, S…, d)` read
//!    back from each `QRD` register vs the solver's Bayes-net
//!    conditionals (rows sign-normalized: QR is unique up to row signs).
//! 3. **Solution** — the program's Δ vs back-substitution through the
//!    solver's Bayes net, and vs a cached [`SolvePlan`] execution.

use orianna_compiler::{compile, execute, Op};
use orianna_graph::{natural_ordering, FactorGraph};
use orianna_math::{Mat, Parallelism, Vec64};
use orianna_solver::{eliminate, SolvePlan};

/// A structured oracle failure: which stage diverged and by how much.
#[derive(Debug, Clone)]
pub enum OracleFailure {
    /// The compiler rejected the graph.
    Compile(String),
    /// The functional simulator failed.
    Execute(String),
    /// The analytic solver failed.
    Solve(String),
    /// A compared quantity diverged beyond tolerance.
    Mismatch {
        /// Which comparison ("factor rhs", "conditional R", …).
        stage: &'static str,
        /// Index context (factor index, variable id, …).
        index: usize,
        /// Observed divergence.
        diff: f64,
        /// Allowed tolerance.
        tol: f64,
    },
}

impl std::fmt::Display for OracleFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OracleFailure::Compile(e) => write!(f, "compile failed: {e}"),
            OracleFailure::Execute(e) => write!(f, "execute failed: {e}"),
            OracleFailure::Solve(e) => write!(f, "solver failed: {e}"),
            OracleFailure::Mismatch {
                stage,
                index,
                diff,
                tol,
            } => write!(
                f,
                "{stage} mismatch at {index}: diff {diff:.3e} > tol {tol:.3e}"
            ),
        }
    }
}

impl std::error::Error for OracleFailure {}

/// What the oracle compared, for sweep-level reporting.
#[derive(Debug, Clone, Copy, Default)]
pub struct OracleReport {
    /// Factors whose RHS/Jacobians were compared.
    pub factors: usize,
    /// Conditionals whose `(R, S…, d)` were compared.
    pub conditionals: usize,
    /// Total Δ dimension compared.
    pub delta_dim: usize,
}

fn mismatch(stage: &'static str, index: usize, diff: f64, tol: f64) -> OracleFailure {
    OracleFailure::Mismatch {
        stage,
        index,
        diff,
        tol,
    }
}

/// Sign-normalizes conditional rows in place so each diagonal entry of
/// `R` is non-negative; `parents` blocks and `rhs` flip with their row.
/// QR factors are unique only up to a per-row sign.
fn normalize_rows(r: &mut Mat, parents: &mut [(orianna_graph::VarId, Mat)], rhs: &mut Vec64) {
    for d in 0..r.rows() {
        if r[(d, d)] < 0.0 {
            for c in 0..r.cols() {
                r[(d, c)] = -r[(d, c)];
            }
            for (_, s) in parents.iter_mut() {
                for c in 0..s.cols() {
                    s[(d, c)] = -s[(d, c)];
                }
            }
            rhs[d] = -rhs[d];
        }
    }
}

/// Runs the full differential oracle on one graph.
///
/// `tol` is interpreted relative to the magnitude of the compared block:
/// a block with norm `‖X‖` may diverge by at most `tol · (1 + ‖X‖)`,
/// which reads as absolute for O(1) quantities and relative for large
/// camera-intrinsics-scaled blocks.
///
/// # Errors
/// Returns the first [`OracleFailure`] encountered.
pub fn check_graph(g: &FactorGraph, tol: f64) -> Result<OracleReport, OracleFailure> {
    let ordering = natural_ordering(g);
    let prog = compile(g, &ordering).map_err(|e| OracleFailure::Compile(e.to_string()))?;
    let result = execute(&prog, g.values()).map_err(|e| OracleFailure::Execute(e.to_string()))?;
    let mut report = OracleReport::default();

    // 1. Linearization: per-factor whitened RHS and Jacobian blocks.
    let sys = g.linearize();
    for (fi, lf) in sys.factors.iter().enumerate() {
        let rhs = result
            .try_reg(prog.factor_rhs[fi])
            .map_err(|e| OracleFailure::Execute(e.to_string()))?;
        let mut diff: f64 = 0.0;
        for r in 0..lf.rhs.len() {
            diff = diff.max((rhs[(r, 0)] - lf.rhs[r]).abs());
        }
        let scale = 1.0 + lf.rhs.norm();
        if diff > tol * scale {
            return Err(mismatch("factor rhs", fi, diff, tol * scale));
        }
        for ((key, jreg), (key2, jblk)) in prog.factor_jacobians[fi]
            .iter()
            .zip(lf.keys.iter().zip(&lf.blocks))
        {
            if key != key2 {
                return Err(mismatch("factor key order", fi, f64::NAN, 0.0));
            }
            let jm = result
                .try_reg(*jreg)
                .map_err(|e| OracleFailure::Execute(e.to_string()))?;
            if jm.shape() != jblk.shape() {
                return Err(mismatch("factor jacobian shape", fi, f64::NAN, 0.0));
            }
            let jd = (jm - jblk).max_abs();
            let jscale = 1.0 + jblk.norm();
            if jd > tol * jscale {
                return Err(mismatch("factor jacobian", fi, jd, tol * jscale));
            }
        }
        report.factors += 1;
    }

    // 2. Elimination: conditionals read back from the QRD registers.
    let (bn, _) = eliminate(&sys, &ordering).map_err(|e| OracleFailure::Solve(e.to_string()))?;
    for (var, qrd_id) in &prog.elimination {
        let instr = prog
            .instrs
            .iter()
            .find(|i| i.id == *qrd_id)
            .ok_or_else(|| OracleFailure::Execute(format!("QRD {qrd_id} missing")))?;
        let (frontal_dim, seps) = match &instr.op {
            Op::Qrd {
                frontal_dim, seps, ..
            } => (*frontal_dim, seps.clone()),
            _ => return Err(OracleFailure::Execute(format!("{qrd_id} is not a QRD"))),
        };
        let r_full = result
            .try_reg(instr.dst)
            .map_err(|e| OracleFailure::Execute(e.to_string()))?;
        let dv = frontal_dim;
        let cols = dv + seps.iter().map(|(_, d)| d).sum::<usize>();
        let mut r_exec = r_full.block(0, 0, dv, dv);
        let mut parents_exec = Vec::with_capacity(seps.len());
        let mut off = dv;
        for (s, d) in &seps {
            parents_exec.push((*s, r_full.block(0, off, dv, *d)));
            off += d;
        }
        let mut d_exec = Vec64::zeros(dv);
        for r in 0..dv {
            d_exec[r] = r_full[(r, cols)];
        }
        normalize_rows(&mut r_exec, &mut parents_exec, &mut d_exec);

        let cond = bn
            .conditionals
            .iter()
            .find(|c| c.var == *var)
            .ok_or_else(|| OracleFailure::Solve(format!("no conditional for {var}")))?;
        let mut r_ref = cond.r.clone();
        let mut parents_ref = cond.parents.clone();
        let mut d_ref = cond.rhs.clone();
        normalize_rows(&mut r_ref, &mut parents_ref, &mut d_ref);

        let rscale = 1.0 + r_ref.norm();
        let rd = (&r_exec - &r_ref).max_abs();
        if rd > tol * rscale {
            return Err(mismatch("conditional R", var.0, rd, tol * rscale));
        }
        if parents_exec.len() != parents_ref.len() {
            return Err(mismatch("conditional parents", var.0, f64::NAN, 0.0));
        }
        for ((pv, ps), (qv, qs)) in parents_exec.iter().zip(&parents_ref) {
            if pv != qv {
                return Err(mismatch("conditional parent order", var.0, f64::NAN, 0.0));
            }
            let sd = (ps - qs).max_abs();
            let sscale = 1.0 + qs.norm();
            if sd > tol * sscale {
                return Err(mismatch("conditional S", var.0, sd, tol * sscale));
            }
        }
        let mut dd: f64 = 0.0;
        for r in 0..dv {
            dd = dd.max((d_exec[r] - d_ref[r]).abs());
        }
        let dscale = 1.0 + d_ref.norm();
        if dd > tol * dscale {
            return Err(mismatch("conditional d", var.0, dd, tol * dscale));
        }
        report.conditionals += 1;
    }

    // 3. Solution: program Δ vs Bayes-net back-substitution vs SolvePlan.
    let delta_ref = bn
        .back_substitute()
        .map_err(|e| OracleFailure::Solve(e.to_string()))?;
    let dscale = 1.0 + delta_ref.norm();
    let dd = (&result.delta - &delta_ref).norm();
    if dd > tol * dscale {
        return Err(mismatch("delta (eliminate)", 0, dd, tol * dscale));
    }
    let plan = SolvePlan::for_system(&sys, ordering.as_slice())
        .map_err(|e| OracleFailure::Solve(e.to_string()))?;
    let (bn_plan, _) = plan
        .execute(&sys, &Parallelism::serial())
        .map_err(|e| OracleFailure::Solve(e.to_string()))?;
    let delta_plan = bn_plan
        .back_substitute()
        .map_err(|e| OracleFailure::Solve(e.to_string()))?;
    let pd = (&result.delta - &delta_plan).norm();
    if pd > tol * dscale {
        return Err(mismatch("delta (plan)", 0, pd, tol * dscale));
    }
    report.delta_dim = delta_ref.len();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, Family, GenConfig};

    #[test]
    fn oracle_accepts_each_family() {
        for family in Family::ALL {
            let g = generate(&GenConfig::new(family, 5, 0.5, 7));
            let report = check_graph(&g, 1e-9).unwrap_or_else(|e| panic!("{}: {e}", family.name()));
            assert!(report.factors > 0);
            assert!(report.conditionals > 0);
            assert!(report.delta_dim > 0);
        }
    }

    #[test]
    fn oracle_reports_compile_failures() {
        use orianna_graph::CustomFactor;
        use orianna_math::Vec64;
        let mut g = FactorGraph::new();
        let x = g.add_vector(Vec64::from_slice(&[1.0]));
        g.add_factor(CustomFactor::new(vec![x], 1, 1.0, |vals, keys| {
            let v = vals.get(keys[0]).as_vector();
            Vec64::from_slice(&[v[0] * v[0]])
        }));
        assert!(matches!(
            check_graph(&g, 1e-9),
            Err(OracleFailure::Compile(_))
        ));
    }
}
