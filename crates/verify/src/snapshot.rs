//! Golden-snapshot helpers for compiled ISA programs.
//!
//! A snapshot pins the compiler's output for a fixed input: the
//! instruction count, the per-[`UnitClass`] histogram, and the full
//! mnemonic stream. Snapshots live in `crates/verify/golden/` and are
//! compared textually; to accept an intentional compiler change, re-run
//! the golden tests with `ORIANNA_BLESS=1` and commit the rewritten
//! files. On mismatch the observed text is written next to the golden
//! file as `<name>.actual` so CI can surface the diff as an artifact.

use orianna_compiler::{Program, UnitClass};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Renders the snapshot text for a compiled program.
pub fn render(prog: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "instructions: {}", prog.instrs.len());
    let _ = writeln!(out, "registers: {}", prog.num_regs());
    let hist = prog.histogram();
    for class in UnitClass::ALL {
        let _ = writeln!(out, "{class:?}: {}", hist.get(&class).copied().unwrap_or(0));
    }
    let _ = writeln!(out, "---");
    let mnemonics: Vec<&str> = prog.instrs.iter().map(|i| i.op.mnemonic()).collect();
    for line in mnemonics.chunks(16) {
        let _ = writeln!(out, "{}", line.join(" "));
    }
    out
}

/// Outcome of a snapshot comparison.
#[derive(Debug)]
pub enum SnapshotResult {
    /// Snapshot matched the golden file.
    Match,
    /// `ORIANNA_BLESS=1`: the golden file was (re)written.
    Blessed,
    /// Mismatch: the observed text was written to `actual_path`.
    Mismatch {
        /// The golden file compared against.
        golden_path: PathBuf,
        /// Where the observed text was written.
        actual_path: PathBuf,
    },
    /// No golden file exists and blessing is off.
    MissingGolden {
        /// The expected golden file location.
        golden_path: PathBuf,
        /// Where the observed text was written.
        actual_path: PathBuf,
    },
}

impl SnapshotResult {
    /// True for [`SnapshotResult::Match`] and [`SnapshotResult::Blessed`].
    pub fn is_ok(&self) -> bool {
        matches!(self, SnapshotResult::Match | SnapshotResult::Blessed)
    }
}

/// True when the current process was asked to rewrite golden files.
pub fn blessing() -> bool {
    std::env::var("ORIANNA_BLESS")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Compares `actual` against `<dir>/<name>.txt`, blessing or recording a
/// diff artifact as appropriate.
pub fn check(dir: &Path, name: &str, actual: &str) -> std::io::Result<SnapshotResult> {
    let golden_path = dir.join(format!("{name}.txt"));
    let actual_path = dir.join(format!("{name}.actual"));
    if blessing() {
        std::fs::create_dir_all(dir)?;
        std::fs::write(&golden_path, actual)?;
        let _ = std::fs::remove_file(&actual_path);
        return Ok(SnapshotResult::Blessed);
    }
    match std::fs::read_to_string(&golden_path) {
        Ok(expected) => {
            if expected == actual {
                let _ = std::fs::remove_file(&actual_path);
                Ok(SnapshotResult::Match)
            } else {
                std::fs::write(&actual_path, actual)?;
                Ok(SnapshotResult::Mismatch {
                    golden_path,
                    actual_path,
                })
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            std::fs::create_dir_all(dir)?;
            std::fs::write(&actual_path, actual)?;
            Ok(SnapshotResult::MissingGolden {
                golden_path,
                actual_path,
            })
        }
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orianna_compiler::compile;
    use orianna_graph::{natural_ordering, FactorGraph, PriorFactor};
    use orianna_lie::Pose2;

    #[test]
    fn render_is_deterministic_and_structured() {
        let mut g = FactorGraph::new();
        let a = g.add_pose2(Pose2::identity());
        g.add_factor(PriorFactor::pose2(a, Pose2::identity(), 0.1));
        let prog = compile(&g, &natural_ordering(&g)).unwrap();
        let s1 = render(&prog);
        let s2 = render(&prog);
        assert_eq!(s1, s2);
        assert!(s1.starts_with("instructions: "));
        assert!(s1.contains("Qr: 1"));
        assert!(s1.contains("QRD"));
        assert!(s1.contains("BSUB"));
    }
}
