//! # orianna-verify
//!
//! Differential conformance and fuzzing harness for the ORIANNA stack.
//!
//! The workspace contains two independent implementations of the same
//! mathematics: the analytic path (`orianna-graph` linearization +
//! `orianna-solver` elimination) and the compiled path (`orianna-compiler`
//! lower → MO-DFG → codegen → ISA execution). This crate turns that
//! redundancy into a verification tool:
//!
//! * [`gen`] — seeded random factor graphs across four families (planar
//!   SLAM, spatial SLAM, camera/landmark, vector planning), deterministic
//!   per `(family, size, density, seed)`;
//! * [`oracle`] — the differential oracle: the compiled program's
//!   Jacobians, per-variable conditionals `(R, S…, d)`, and solution Δ
//!   must match the analytic solver (and a cached [`orianna_solver::SolvePlan`])
//!   within tolerance;
//! * [`simcheck`] — cycle-level simulator invariants (OoO ≤ in-order,
//!   critical path is a lower bound, more units never hurt,
//!   batch ≡ sequential);
//! * [`dsecheck`] — design-space-exploration equivalence: the pruned,
//!   multi-threaded hardware sweep must pick the bitwise-same design and
//!   Pareto frontier as a serial exhaustive sweep; and search-DSE
//!   oracles (search never beats exhaustive, polish reproduces a pruned
//!   sweep bitwise, dedup/memo accounting exact, trial logs
//!   thread-count deterministic);
//! * [`snapshot`] — golden mnemonic-stream snapshots of the compiled
//!   applications with an `ORIANNA_BLESS=1` update flow.
//!
//! The integration tests under `tests/` drive the sweeps; case counts
//! scale with the `ORIANNA_VERIFY_CASES` environment variable so CI can
//! run a bounded smoke pass while local runs go deeper.

pub mod dsecheck;
pub mod gen;
pub mod incremental;
pub mod oracle;
pub mod simcheck;
pub mod snapshot;

pub use dsecheck::{check_dse, check_search, DseViolation, SearchSummary, SearchViolation};
pub use gen::{generate, Family, GenConfig};
pub use incremental::{
    batch_reference, check_incremental, IncrementalReport, IncrementalViolation, INCREMENTAL_TOL,
};
pub use oracle::{check_graph, OracleFailure, OracleReport};
pub use simcheck::{check_batch, check_workload, sample_configs, SimViolation};
pub use snapshot::{render, SnapshotResult};

/// Number of fuzz cases per family: `ORIANNA_VERIFY_CASES` when set,
/// otherwise `default`.
pub fn cases_per_family(default: usize) -> usize {
    std::env::var("ORIANNA_VERIFY_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}
