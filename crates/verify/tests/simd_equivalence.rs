//! Property tests for the SIMD panel kernels and the auto-gated
//! parallelism mode (ISSUE 6): the runtime-dispatched AVX f64×4 kernels
//! must be **bitwise identical** to their scalar fallbacks on panels
//! drawn from every generator family and on adversarial shapes
//! (remainder widths, unaligned base pointers), and `Parallelism::auto`
//! must produce bitwise the same solve results as both the serial
//! reference and an ungated thread count.
//!
//! On a machine without AVX (or under `ORIANNA_NO_SIMD=1`) the dispatch
//! resolves to the scalar path and these tests degenerate to
//! self-comparisons — still useful as fallback-path coverage, which is
//! exactly what the CI `ORIANNA_NO_SIMD` matrix leg runs.

use orianna_graph::natural_ordering;
use orianna_math::{panel, Parallelism};
use orianna_solver::SolvePlan;
use orianna_verify::{generate, Family, GenConfig};
use proptest::prelude::*;

fn family_of(idx: usize) -> Family {
    Family::ALL[idx % Family::ALL.len()]
}

/// Deterministic pseudo-random fill, decoupled from proptest's shrinker
/// so failures reproduce from the seed alone.
fn fill(buf: &mut [f64], seed: u64) {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    for x in buf.iter_mut() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        *x = (state as f64 / u64::MAX as f64) * 2.0 - 1.0;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Dispatched matmul equals the scalar reference bitwise on random
    /// shapes, including widths with a non-multiple-of-4 remainder and
    /// base pointers at every 8-byte offset from 32-byte alignment.
    #[test]
    fn simd_matmul_matches_scalar_bitwise(
        m in 1usize..12,
        k in 1usize..12,
        n in 1usize..20,
        offset in 0usize..4,
        seed in 0u64..1024,
    ) {
        let mut a = vec![0.0f64; m * k];
        let mut b_backing = vec![0.0f64; k * n + offset];
        fill(&mut a, seed);
        fill(&mut b_backing, seed ^ 0xABCD);
        // Operating on a sub-slice shifts the base pointer off 32-byte
        // alignment — the kernels use unaligned loads and must not care.
        let b = &b_backing[offset..];
        let mut dispatched = vec![0.0f64; m * n];
        let mut scalar = vec![0.0f64; m * n];
        panel::matmul_into(&mut dispatched, &a, b, m, k, n);
        panel::matmul_into_scalar(&mut scalar, &a, b, m, k, n);
        prop_assert_eq!(
            dispatched.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            scalar.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    /// Dispatched Householder apply equals the scalar reference bitwise
    /// on random panels and reflection offsets.
    #[test]
    fn simd_reflect_matches_scalar_bitwise(
        rows in 2usize..16,
        width in 1usize..18,
        kfrac in 0usize..4,
        offset in 0usize..4,
        seed in 0u64..1024,
    ) {
        let k = kfrac * (rows - 1) / 4;
        let mut backing = vec![0.0f64; rows * width + offset];
        fill(&mut backing, seed);
        let mut v = vec![0.0f64; rows - k];
        fill(&mut v, seed ^ 0x5EED);
        let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-9);
        v.iter_mut().for_each(|x| *x /= norm);
        let mut dispatched = backing[offset..].to_vec();
        let mut scalar = dispatched.clone();
        panel::reflect_left(&mut dispatched, rows, width, &v, k);
        panel::reflect_left_scalar(&mut scalar, rows, width, &v, k);
        prop_assert_eq!(
            dispatched.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            scalar.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    /// Full triangularization dispatch equals the forced-scalar path
    /// bitwise on the panels a real solve stacks: every linear factor of
    /// every generator family, laid out `[blocks | rhs]` like the arena.
    #[test]
    fn simd_triangularize_matches_scalar_on_family_panels(
        fam in 0usize..4,
        vars in 3usize..9,
        dstep in 0usize..4,
        seed in 0u64..512,
    ) {
        let g = generate(&GenConfig::new(family_of(fam), vars, dstep as f64 * 0.25, seed));
        let sys = g.linearize();
        for f in &sys.factors {
            let rows = f.rows();
            let width: usize = f.blocks.iter().map(|b| b.cols()).sum::<usize>() + 1;
            let mut panel_buf = vec![0.0f64; rows * width];
            for r in 0..rows {
                let mut c = 0;
                for blk in &f.blocks {
                    panel_buf[r * width + c..r * width + c + blk.cols()]
                        .copy_from_slice(blk.row(r));
                    c += blk.cols();
                }
                panel_buf[r * width + width - 1] = f.rhs[r];
            }
            let mut dispatched = panel_buf.clone();
            let mut scalar = panel_buf;
            let mut vbuf = vec![0.0f64; rows.max(1)];
            panel::triangularize(&mut dispatched, rows, width, &mut vbuf);
            panel::triangularize_scalar(&mut scalar, rows, width, &mut vbuf);
            prop_assert_eq!(
                dispatched.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                scalar.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `Parallelism::auto` may only *route* a solve — to the serial path
    /// or to the batched path — never perturb it. Concretely (matching
    /// the invariants documented on `eliminate_with`):
    ///
    /// 1. the auto result is bitwise identical to whichever reference
    ///    path (`serial()` / `with_threads(n)`) its gate selects;
    /// 2. the batched path is bitwise identical for every thread count;
    /// 3. serial and batched back-substituted deltas agree to 1e-12
    ///    (the batch schedule permutes the elimination order, so exact
    ///    bitwise equality across the two *algorithms* is not promised).
    #[test]
    fn auto_mode_routes_without_perturbing_the_solve(
        fam in 0usize..4,
        vars in 3usize..9,
        dstep in 0usize..4,
        seed in 0u64..512,
    ) {
        let g = generate(&GenConfig::new(family_of(fam), vars, dstep as f64 * 0.25, seed));
        let sys = g.linearize();
        let ordering = natural_ordering(&g);
        let plan = SolvePlan::for_system(&sys, ordering.as_slice()).expect("plan builds");

        let solve = |par: &Parallelism| {
            let (bn, _) = plan.execute(&sys, par).expect("plan executes");
            bn.back_substitute().expect("back-substitutes")
        };
        let bits = |v: &orianna_math::Vec64| {
            v.as_slice().iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        };

        let serial = solve(&Parallelism::serial());
        let t2 = solve(&Parallelism::with_threads(2));
        let t4 = solve(&Parallelism::with_threads(4));
        let t8 = solve(&Parallelism::with_threads(8));
        let auto = solve(&Parallelism::auto_with_threads(4));

        // (2) thread-count independence of the batched schedule.
        prop_assert_eq!(bits(&t2), bits(&t4));
        prop_assert_eq!(bits(&t4), bits(&t8));

        // (1) auto equals the gate-selected reference bitwise. The gate
        // decision is replayed here exactly as `execute` computes it.
        let auto_par = Parallelism::auto_with_threads(4);
        let gated = auto_par.gate(plan.estimated_flops());
        let reference = if gated.is_parallel() { &t4 } else { &serial };
        prop_assert_eq!(bits(&auto), bits(reference));

        // (3) the two algorithms agree to roundoff.
        prop_assert_eq!(serial.len(), t4.len());
        for (a, b) in serial.as_slice().iter().zip(t4.as_slice()) {
            prop_assert!((a - b).abs() < 1e-12);
        }

        // Gate extremes behave: zero work runs serial, unbounded work
        // grants the full (non-auto) thread budget — which auto mode
        // clamps to the cores actually available.
        prop_assert!(!auto_par.gate(0).is_parallel());
        let full = auto_par.gate(u64::MAX);
        prop_assert!(!full.is_auto());
        prop_assert_eq!(
            full.effective_threads(0),
            4usize.min(orianna_math::par::available_threads())
        );
    }
}
