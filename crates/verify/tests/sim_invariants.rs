//! Cycle-level simulator invariants across sampled hardware configs
//! (ISSUE: conformance harness, simulator oracle).
//!
//! Workloads are the compiled algorithm streams of all four paper
//! applications; configurations are seeded samples of per-class unit
//! counts. See `orianna_verify::simcheck` for the invariant definitions.

use orianna_apps::all_apps;
use orianna_compiler::{compile, Program};
use orianna_graph::natural_ordering;
use orianna_hw::{HwConfig, IssuePolicy, Workload};
use orianna_verify::simcheck::{check_batch, check_workload, sample_configs};

/// One compiled stream per application algorithm (12 programs).
fn compiled_programs() -> Vec<(String, Program)> {
    all_apps(42)
        .into_iter()
        .flat_map(|app| {
            app.algorithms
                .into_iter()
                .map(move |alg| {
                    let prog = compile(&alg.graph, &natural_ordering(&alg.graph))
                        .unwrap_or_else(|e| panic!("{}/{}: {e}", app.name, alg.name));
                    (format!("{}/{}", app.name, alg.name), prog)
                })
                .collect::<Vec<_>>()
        })
        .collect()
}

#[test]
fn invariants_hold_across_sampled_configs() {
    let programs = compiled_programs();
    // ≥ 20 sampled configurations with unit counts in 1..=4.
    let configs = sample_configs(24, 4, 0xC0FFEE);
    assert!(configs.len() >= 20);
    for (name, prog) in &programs {
        let workload = Workload::single("stream", prog);
        check_workload(&workload, &configs).unwrap_or_else(|v| panic!("{name}: {v}"));
    }
}

#[test]
fn multi_stream_application_workloads_hold_too() {
    let programs = compiled_programs();
    // Group the three algorithms of each application into one workload.
    let configs = sample_configs(6, 3, 0xBEEF);
    for chunk in programs.chunks(3) {
        let workload = Workload {
            streams: chunk
                .iter()
                .map(|(_, p)| orianna_hw::Stream {
                    name: "algo",
                    program: p,
                })
                .collect(),
        };
        check_workload(&workload, &configs).unwrap_or_else(|v| panic!("{}: {v}", chunk[0].0));
    }
}

#[test]
fn batch_simulation_matches_sequential() {
    let programs = compiled_programs();
    let workloads: Vec<Workload<'_>> = programs
        .iter()
        .map(|(_, p)| Workload::single("stream", p))
        .collect();
    let config = HwConfig::with_counts(
        &orianna_compiler::UnitClass::ALL
            .iter()
            .map(|c| (*c, 2))
            .collect::<Vec<_>>(),
    );
    for policy in [IssuePolicy::OutOfOrder, IssuePolicy::InOrder] {
        check_batch(&workloads, &config, policy).unwrap_or_else(|v| panic!("{v}"));
    }
}

#[test]
fn minimal_config_is_the_slowest_sample() {
    // The single-unit-per-class baseline cannot beat any sampled config
    // on total throughput-bound streams… but it CAN tie; assert ≥ on the
    // best sampled config rather than strict dominance.
    let programs = compiled_programs();
    let configs = sample_configs(8, 4, 7);
    let minimal = HwConfig::minimal();
    for (name, prog) in programs.iter().take(3) {
        let workload = Workload::single("stream", prog);
        let base = orianna_hw::simulate(&workload, &minimal, IssuePolicy::OutOfOrder).cycles;
        for c in &configs {
            let got = orianna_hw::simulate(&workload, c, IssuePolicy::OutOfOrder).cycles;
            assert!(got <= base, "{name}: config {c:?} slower than minimal");
        }
    }
}
