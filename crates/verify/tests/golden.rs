//! Golden ISA snapshots of the four paper applications (ISSUE:
//! conformance harness, snapshot oracle).
//!
//! Each application algorithm compiles to a deterministic instruction
//! stream for a fixed seed; the snapshot (count, unit-class histogram,
//! mnemonic stream) is pinned under `crates/verify/golden/`. To accept an
//! intentional compiler change:
//!
//! ```sh
//! ORIANNA_BLESS=1 cargo test -p orianna-verify --test golden
//! ```
//!
//! and commit the rewritten files. On mismatch the observed text is left
//! next to the golden file as `<name>.actual` (uploaded as a CI
//! artifact).

use orianna_apps::all_apps;
use orianna_compiler::compile;
use orianna_graph::natural_ordering;
use orianna_verify::snapshot::{check, render, SnapshotResult};
use std::path::PathBuf;

const SEED: u64 = 42;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("golden")
}

#[test]
fn application_isa_streams_are_pinned() {
    let dir = golden_dir();
    let mut failures = Vec::new();
    for app in all_apps(SEED) {
        for alg in &app.algorithms {
            let prog = compile(&alg.graph, &natural_ordering(&alg.graph))
                .unwrap_or_else(|e| panic!("{}/{}: {e}", app.name, alg.name));
            let name = format!(
                "{}_{}",
                app.name.to_lowercase().replace([' ', '-'], "_"),
                alg.name
            );
            match check(&dir, &name, &render(&prog)).expect("snapshot io") {
                SnapshotResult::Match | SnapshotResult::Blessed => {}
                SnapshotResult::Mismatch {
                    golden_path,
                    actual_path,
                } => failures.push(format!(
                    "{name}: differs from {} (observed at {})",
                    golden_path.display(),
                    actual_path.display()
                )),
                SnapshotResult::MissingGolden {
                    golden_path,
                    actual_path,
                } => failures.push(format!(
                    "{name}: no golden file at {} (observed at {}); run with ORIANNA_BLESS=1",
                    golden_path.display(),
                    actual_path.display()
                )),
            }
        }
    }
    assert!(
        failures.is_empty(),
        "golden snapshots diverged:\n{}",
        failures.join("\n")
    );
}

#[test]
fn snapshots_are_seed_stable() {
    // The same seed must give byte-identical snapshots across processes;
    // a second in-process build is the cheap proxy.
    let apps1 = all_apps(SEED);
    let apps2 = all_apps(SEED);
    for (a1, a2) in apps1.iter().zip(&apps2) {
        for (g1, g2) in a1.algorithms.iter().zip(&a2.algorithms) {
            let p1 = compile(&g1.graph, &natural_ordering(&g1.graph)).unwrap();
            let p2 = compile(&g2.graph, &natural_ordering(&g2.graph)).unwrap();
            assert_eq!(render(&p1), render(&p2), "{}/{}", a1.name, g1.name);
        }
    }
}
