//! The differential fuzz sweep (ISSUE: conformance harness, compiler
//! oracle): seeded random graphs from every family are pushed through
//! the compiled pipeline and checked against the analytic solver.
//!
//! Case count per family defaults to 500 and scales with
//! `ORIANNA_VERIFY_CASES` (CI smoke runs use a smaller value; see
//! `.github/workflows/ci.yml`).

use orianna_verify::{cases_per_family, check_graph, generate, Family, GenConfig};

/// Deterministic sweep over sizes and densities for one family.
fn sweep(family: Family, cases: usize) {
    let mut checked = 0;
    let mut factors = 0;
    for case in 0..cases {
        let variables = 3 + case % 8; // 3..=10 primary variables
        let density = (case % 5) as f64 * 0.25; // 0, .25, .5, .75, 1
        let cfg = GenConfig::new(family, variables, density, 0x5EED_0000 + case as u64);
        let g = generate(&cfg);
        let report = check_graph(&g, 1e-9).unwrap_or_else(|e| {
            panic!(
                "{} case {case} (vars {variables}, density {density}): {e}",
                family.name()
            )
        });
        checked += 1;
        factors += report.factors;
    }
    assert_eq!(checked, cases);
    assert!(factors > cases, "{}: sweep too thin", family.name());
}

#[test]
fn pose2_slam_matches_solver() {
    sweep(Family::Pose2Slam, cases_per_family(500));
}

#[test]
fn pose3_slam_matches_solver() {
    sweep(Family::Pose3Slam, cases_per_family(500));
}

#[test]
fn camera_landmark_matches_solver() {
    sweep(Family::CameraLandmark, cases_per_family(500));
}

#[test]
fn planning_matches_solver() {
    sweep(Family::Planning, cases_per_family(500));
}
