//! Property tests for DSE pruning/parallelism soundness (ISSUE 5):
//! on workloads compiled from every generator family, the pruned and
//! multi-threaded hardware sweeps must return exactly the serial
//! exhaustive argmin and an identical Pareto frontier.
//!
//! The sweep runs once per `(thread count, mode)` pair — including a
//! context on workspace-default parallelism, so a CI matrix over
//! `ORIANNA_THREADS` exercises the env knob end to end.

use orianna_compiler::{compile, UnitClass};
use orianna_graph::natural_ordering;
use orianna_hw::{HwConfig, Objective, Resources, Workload};
use orianna_verify::{check_dse, generate, sample_configs, Family, GenConfig};
use proptest::prelude::*;

fn family_of(idx: usize) -> Family {
    Family::ALL[idx % Family::ALL.len()]
}

/// Candidate lists mix a uniform replication ladder (which crosses the
/// saturation knee on small workloads, so bound pruning actually fires)
/// with randomly sampled unit mixes on the ramp below it.
fn candidate_space(seed: u64) -> Vec<HwConfig> {
    let mut out: Vec<HwConfig> = (1..=6)
        .map(|k| HwConfig::with_counts(&UnitClass::ALL.map(|c| (c, k))))
        .collect();
    out.extend(sample_configs(12, 4, seed));
    out
}

/// Roomy enough that the whole ladder is in budget; the tight-budget
/// path is covered separately below.
fn roomy_budget() -> Resources {
    Resources {
        lut: u64::MAX / 4,
        ff: u64::MAX / 4,
        bram: u64::MAX / 4,
        dsp: u64::MAX / 4,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        orianna_verify::cases_per_family(24) as u32
    ))]

    /// Pruned + parallel sweeps reproduce the serial exhaustive sweep
    /// bitwise on all four generator families, both objectives.
    #[test]
    fn pruned_parallel_sweep_matches_serial_exhaustive(
        fam in 0usize..4,
        vars in 3usize..8,
        dstep in 0usize..4,
        seed in 0u64..256,
        obj in 0usize..2,
    ) {
        let g = generate(&GenConfig::new(family_of(fam), vars, dstep as f64 * 0.25, seed));
        let prog = compile(&g, &natural_ordering(&g)).expect("generated graph compiles");
        let wl = Workload::single("wl", &prog);
        let objective = if obj == 0 { Objective::Latency } else { Objective::Energy };
        let candidates = candidate_space(seed);
        if let Err(v) = check_dse(&wl, &candidates, &roomy_budget(), objective, &[1, 2, 4]) {
            prop_assert!(false, "DSE equivalence violated: {v}");
        }
    }

    /// Same equivalence under a budget tight enough to exclude part of
    /// the candidate list (exercises the budget-skip path).
    #[test]
    fn sweep_equivalence_holds_under_tight_budgets(
        fam in 0usize..4,
        vars in 3usize..7,
        seed in 256u64..512,
    ) {
        let g = generate(&GenConfig::new(family_of(fam), vars, 0.5, seed));
        let prog = compile(&g, &natural_ordering(&g)).expect("generated graph compiles");
        let wl = Workload::single("wl", &prog);
        let candidates = candidate_space(seed);
        // Roughly a mid-grid cutoff: some mixes fit, the ladder's top
        // does not.
        let budget = HwConfig::with_counts(&UnitClass::ALL.map(|c| (c, 3))).resources();
        if let Err(v) = check_dse(&wl, &candidates, &budget, Objective::Latency, &[1, 3]) {
            prop_assert!(false, "DSE equivalence violated: {v}");
        }
    }
}
