//! Property tests for the search-DSE oracles (ISSUE 10): on workloads
//! compiled from every generator family, the seeded search must never
//! beat the exhaustive argmin, must recover its objective exactly on
//! enumerable spaces, must reproduce its final polish with one pruned
//! sweep bitwise, must keep dedup/memo accounting exact, and must emit
//! bitwise-identical trial logs at every thread count — including a run
//! on workspace-default parallelism so a CI matrix over `ORIANNA_THREADS`
//! exercises the env knob end to end.

use orianna_compiler::{compile, UnitClass};
use orianna_graph::natural_ordering;
use orianna_hw::{Combine, DseContext, Objective, Resources, SearchSpace, Workload, WorkloadSet};
use orianna_verify::{check_search, generate, Family, GenConfig};
use proptest::prelude::*;

fn family_of(idx: usize) -> Family {
    Family::ALL[idx % Family::ALL.len()]
}

/// The acceptance-criterion space: 512 configurations, enumerable, with
/// enough per-class spread that the argmin is interior for the energy
/// objective.
fn enumerable_space() -> SearchSpace {
    SearchSpace::with_max(&[
        (UnitClass::Qr, 4),
        (UnitClass::MatMul, 4),
        (UnitClass::Vector, 4),
        (UnitClass::Memory, 4),
        (UnitClass::Special, 2),
    ])
}

fn roomy_budget() -> Resources {
    Resources {
        lut: u64::MAX / 4,
        ff: u64::MAX / 4,
        bram: u64::MAX / 4,
        dsp: u64::MAX / 4,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        orianna_verify::cases_per_family(16) as u32
    ))]

    /// All four search oracles hold across generator families, seeds,
    /// and thread counts {1, 2, 8}, for both objectives.
    #[test]
    fn search_oracles_hold_across_families(
        fam in 0usize..4,
        vars in 3usize..8,
        dstep in 0usize..4,
        seed in 0u64..256,
        obj in 0usize..2,
    ) {
        let g = generate(&GenConfig::new(family_of(fam), vars, dstep as f64 * 0.25, seed));
        let prog = compile(&g, &natural_ordering(&g)).expect("generated graph compiles");
        let wl = Workload::single("wl", &prog);
        let objective = if obj == 0 { Objective::Latency } else { Objective::Energy };
        match check_search(&wl, &enumerable_space(), &roomy_budget(), objective, seed, &[1, 2, 8]) {
            Err(v) => prop_assert!(false, "search oracle violated: {v}"),
            Ok(summary) => {
                // Zero regret was already checked inside check_search;
                // the simulation budget must also stay ≥10× below
                // exhaustive, memo-hit-adjusted.
                prop_assert!(
                    (summary.simulations as u128) * 10 <= summary.space_size,
                    "{} simulations on a {}-config space",
                    summary.simulations,
                    summary.space_size
                );
            }
        }
    }

    /// The oracles also hold under a budget tight enough to exclude the
    /// top of the space (exercises over-budget dispositions and the
    /// budget-filtered polish neighborhood).
    #[test]
    fn search_oracles_hold_under_tight_budgets(
        fam in 0usize..4,
        vars in 3usize..7,
        seed in 256u64..512,
    ) {
        let g = generate(&GenConfig::new(family_of(fam), vars, 0.5, seed));
        let prog = compile(&g, &natural_ordering(&g)).expect("generated graph compiles");
        let wl = Workload::single("wl", &prog);
        // Mid-grid cutoff: some mixes fit, the top corner does not.
        let budget = orianna_hw::HwConfig::with_counts(
            &UnitClass::ALL.map(|c| (c, 3)),
        )
        .resources();
        if let Err(v) = check_search(&wl, &enumerable_space(), &budget, Objective::Latency, seed, &[1, 2, 8]) {
            prop_assert!(false, "search oracle violated: {v}");
        }
    }
}

/// Pinned acceptance check: with the default budget and a fixed seed,
/// the search recovers the exhaustive argmin objective with ≥10× fewer
/// simulations on every generator family, both objectives.
#[test]
fn search_recovers_exhaustive_argmin_on_all_families() {
    for (i, family) in Family::ALL.iter().enumerate() {
        let g = generate(&GenConfig::new(*family, 6, 0.5, 1000 + i as u64));
        let prog = compile(&g, &natural_ordering(&g)).expect("generated graph compiles");
        let wl = Workload::single("wl", &prog);
        for objective in [Objective::Latency, Objective::Energy] {
            let summary = check_search(
                &wl,
                &enumerable_space(),
                &roomy_budget(),
                objective,
                42,
                &[1, 2, 8],
            )
            .unwrap_or_else(|v| panic!("{family:?}/{objective:?}: {v}"));
            let best = summary.best_score.expect("winner under a roomy budget");
            let exhaustive = summary
                .exhaustive_score
                .expect("512-config space is enumerable");
            assert_eq!(
                best.to_bits(),
                exhaustive.to_bits(),
                "{family:?}/{objective:?}: regret {}",
                best - exhaustive
            );
            assert!(
                (summary.simulations as u128) * 10 <= summary.space_size,
                "{family:?}/{objective:?}: {} sims on {} configs",
                summary.simulations,
                summary.space_size
            );
        }
    }
}

/// Multi-workload co-design is thread-count deterministic too: one
/// search over several generated workloads emits bitwise-identical
/// trial logs at every thread count.
#[test]
fn multi_workload_search_is_thread_count_deterministic() {
    let graphs: Vec<_> = Family::ALL
        .iter()
        .enumerate()
        .map(|(i, f)| generate(&GenConfig::new(*f, 5, 0.5, 2000 + i as u64)))
        .collect();
    let progs: Vec<_> = graphs
        .iter()
        .map(|g| compile(g, &natural_ordering(g)).expect("generated graph compiles"))
        .collect();
    let space = enumerable_space();
    let budget = roomy_budget();

    let run = |threads: usize| {
        let workloads: Vec<_> = progs.iter().map(|p| Workload::single("wl", p)).collect();
        let mut set = WorkloadSet::new(Objective::Latency, Combine::Max);
        for (i, wl) in workloads.iter().enumerate() {
            set.push(
                format!("wl{i}"),
                DseContext::with_parallelism(wl, orianna_math::Parallelism::with_threads(threads)),
            );
        }
        let got = orianna_hw::search_default(&mut set, &space, &budget, 7);
        assert_eq!(set.simulations(), set.memo_len());
        (got.log.to_json_lines(), got.stats)
    };
    let (base_log, base_stats) = run(1);
    for threads in [2, 8] {
        let (log, stats) = run(threads);
        assert_eq!(log, base_log, "trial log diverges at {threads} threads");
        assert_eq!(stats, base_stats, "stats diverge at {threads} threads");
    }
}
