//! Differential tests for the Bayes-tree incremental solver (ISSUE 7):
//! streaming update / fluid-relinearize / oldest-first-marginalize
//! sequences over every generator family must keep the incremental Δ
//! within 1e-9 of a full batch re-elimination of the same cached problem
//! after **every** operation.
//!
//! The batch reference executes through `SolvePlan` under
//! `Parallelism::default()`, so running this suite across the
//! `ORIANNA_THREADS` / `ORIANNA_NO_SIMD` CI matrix checks the
//! incremental path against every parallel schedule.

use orianna_graph::{BetweenFactor, Factor, PriorFactor, VarId, Variable};
use orianna_lie::Pose2;
use orianna_solver::IncrementalSolver;
use orianna_verify::{check_incremental, Family, GenConfig, INCREMENTAL_TOL};
use proptest::prelude::*;
use std::sync::Arc;

fn family_of(idx: usize) -> Family {
    Family::ALL[idx % Family::ALL.len()]
}

/// Deterministic sweep: every family × a size/density ladder × seeds,
/// case count per family scaled by `ORIANNA_VERIFY_CASES`.
#[test]
fn incremental_matches_batch_across_families() {
    let cases = orianna_verify::cases_per_family(24);
    for family in Family::ALL {
        for case in 0..cases {
            let vars = 4 + (case * 5) % 14;
            let density = (case % 4) as f64 * 0.25;
            let seed = 1000 + case as u64;
            let cfg = GenConfig::new(family, vars, density, seed);
            let rep = check_incremental(&cfg, seed ^ 0xabc, INCREMENTAL_TOL)
                .unwrap_or_else(|v| panic!("{v}"));
            assert!(rep.updates >= 1, "{}: no updates ran", family.name());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        orianna_verify::cases_per_family(24) as u32
    ))]

    /// Random `(family, size, density, graph seed, ops seed)` points:
    /// the ops seed drives random chunk boundaries and random
    /// relinearize/marginalize interleavings, so the sequence space —
    /// not just the graph space — is fuzzed.
    #[test]
    fn random_op_sequences_match_batch(
        fam in 0usize..4,
        vars in 4usize..14,
        dstep in 0usize..4,
        seed in 0u64..512,
        ops_seed in 0u64..512,
    ) {
        let cfg = GenConfig::new(family_of(fam), vars, dstep as f64 * 0.25, seed);
        let rep = check_incremental(&cfg, ops_seed, INCREMENTAL_TOL)
            .unwrap_or_else(|v| panic!("{v}"));
        prop_assert!(rep.max_diff <= INCREMENTAL_TOL);
    }
}

/// Streaming a long pose chain must touch a bounded number of cliques
/// per update — the whole point of the Bayes tree. The trajectory grows
/// to 300 poses; every odometry update may re-eliminate only an O(1)
/// tail, never the trajectory so far.
#[test]
fn streaming_chain_reeliminates_bounded_cliques() {
    let mut inc = IncrementalSolver::new();
    let v0 = inc.add_variable(Variable::Pose2(Pose2::identity()));
    inc.update(vec![
        Arc::new(PriorFactor::pose2(v0, Pose2::identity(), 0.1)) as Arc<dyn Factor>,
    ])
    .unwrap();
    let mut prev = v0;
    let mut worst = 0usize;
    for k in 1..300 {
        let v = inc.add_variable(Variable::Pose2(Pose2::new(0.0, k as f64, 0.01)));
        let before = inc.cliques_reeliminated();
        inc.update(vec![Arc::new(BetweenFactor::pose2(
            prev,
            v,
            Pose2::new(0.0, 1.0, 0.0),
            0.2,
        )) as Arc<dyn Factor>])
            .unwrap();
        worst = worst.max(inc.cliques_reeliminated() - before);
        prev = v;
    }
    assert_eq!(inc.clique_count(), 299);
    assert_eq!(inc.full_rebuilds(), 0, "chain growth never falls back");
    assert!(worst <= 2, "an odometry update touched {worst} cliques");
    // Wildfire keeps back-substitution local: far fewer conditionals
    // were recomputed than the 300 · 300 / 2 a full-sweep-per-update
    // solver would burn.
    assert!(
        inc.wildfire_vars() < 300 * 300 / 8,
        "wildfire recomputed {} conditionals",
        inc.wildfire_vars()
    );
}

/// A loop closure spanning the whole trajectory legitimately touches the
/// root path, but the solution must still match batch — and the next
/// odometry update must drop back to the O(1) regime.
#[test]
fn loop_closure_then_recovery() {
    let mut inc = IncrementalSolver::new();
    let ids: Vec<VarId> = (0..60)
        .map(|i| inc.add_variable(Variable::Pose2(Pose2::new(0.01, i as f64, 0.02))))
        .collect();
    let mut fs: Vec<Arc<dyn Factor>> = Vec::new();
    fs.push(Arc::new(PriorFactor::pose2(ids[0], Pose2::identity(), 0.1)));
    for w in ids.windows(2) {
        fs.push(Arc::new(BetweenFactor::pose2(
            w[0],
            w[1],
            Pose2::new(0.0, 1.0, 0.0),
            0.2,
        )));
    }
    inc.update(fs).unwrap();
    inc.update(vec![Arc::new(BetweenFactor::pose2(
        ids[0],
        ids[59],
        Pose2::new(0.0, 59.0, 0.0),
        0.3,
    )) as Arc<dyn Factor>])
        .unwrap();
    let reference = orianna_verify::batch_reference(&inc).expect("batch solvable");
    assert!((inc.delta() - &reference).norm() < INCREMENTAL_TOL);
    // Recovery: one more odometry step is O(1) again.
    let v = inc.add_variable(Variable::Pose2(Pose2::new(0.0, 60.0, 0.0)));
    let before = inc.cliques_reeliminated();
    inc.update(vec![Arc::new(BetweenFactor::pose2(
        ids[59],
        v,
        Pose2::new(0.0, 1.0, 0.0),
        0.2,
    )) as Arc<dyn Factor>])
        .unwrap();
    assert!(inc.cliques_reeliminated() - before <= 3);
    let reference = orianna_verify::batch_reference(&inc).expect("batch solvable");
    assert!((inc.delta() - &reference).norm() < INCREMENTAL_TOL);
}
