//! Server determinism (ISSUE: fleet-scale serving, determinism
//! satellite): batched, sharded, multi-worker server solves must be
//! **bitwise identical** to a sequential per-session replay —
//! independent of shard count, batch size, worker count, client count,
//! and `ORIANNA_THREADS` — over all four generator families.
//!
//! The property leans on the serving determinism contract: per-request
//! solves are serial pure functions of `(session state, request)`,
//! parallelism exists only across requests, and incremental sessions are
//! closed-loop single-owner. The sequential oracle executes the same
//! per-request code with one unsharded cache; `compare_reports` checks
//! digests, error bits, and iteration counts op by op.
//!
//! Case counts scale with `ORIANNA_VERIFY_CASES` like the other sweeps.

use orianna_server::{
    oracle::{check_server, compare_reports, replay_sequential},
    plan_traffic, run_load, run_naive_load, LoadSpec, ServerConfig, SolverServer,
};
use orianna_verify::{cases_per_family, Family};
use proptest::prelude::*;

fn family_of(i: usize) -> Family {
    Family::ALL[i % Family::ALL.len()]
}

fn spec(family: Family, seed: u64, clients: usize, sessions: usize, ops: usize) -> LoadSpec {
    LoadSpec {
        seed,
        clients,
        batch_sessions: sessions,
        topologies: 2,
        lm_every: 5,
        incremental_sessions: 2,
        ops_per_client: ops,
        families: vec![family],
        variables: 6,
        density: 0.3,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        cases_per_family(16) as u32
    ))]

    /// Random `(family, server shape, traffic seed)` points: the served
    /// outcomes equal the sequential replay bit for bit.
    #[test]
    fn served_equals_sequential_bitwise(
        fam in 0usize..4,
        workers in 1usize..4,
        shards in 1usize..6,
        max_batch in 1usize..7,
        clients in 1usize..4,
        seed in 0u64..1024,
    ) {
        let plan = plan_traffic(&spec(family_of(fam), seed, clients, 5, 6));
        let config = ServerConfig {
            workers,
            shards,
            max_batch,
            queue_capacity: 256,
            ..ServerConfig::default()
        };
        check_server(config, &plan).unwrap_or_else(|e| panic!("{e}"));
    }
}

/// The same traffic through maximally different server shapes produces
/// identical outcomes — shard count, batch size, and worker count are
/// pure performance knobs.
#[test]
fn server_shape_never_changes_results() {
    for (case, family) in Family::ALL.iter().enumerate() {
        let plan = plan_traffic(&spec(*family, 0xD15C0 + case as u64, 3, 6, 8));
        let sequential = replay_sequential(&plan).unwrap_or_else(|e| panic!("{e}"));
        for (workers, shards, max_batch) in [(1, 1, 1), (4, 7, 6), (2, 16, 2)] {
            let server = SolverServer::new(ServerConfig {
                workers,
                shards,
                max_batch,
                queue_capacity: 512,
                ..ServerConfig::default()
            });
            orianna_server::install_sessions(&server, &plan).unwrap();
            let report = run_load(&server, &plan);
            server.shutdown();
            compare_reports(&report.outcomes, &sequential).unwrap_or_else(|e| {
                panic!(
                    "{} with workers={workers} shards={shards} batch={max_batch}: {e}",
                    family.name()
                )
            });
        }
    }
}

/// The naive plan-per-request baseline reaches the same fixed points for
/// batchable (GN) traffic — the speedup claimed in BENCH_server.json is
/// an equal-accuracy comparison, not an approximation trade.
#[test]
fn naive_baseline_matches_served_results_bitwise() {
    let plan = plan_traffic(&LoadSpec {
        seed: 0xACC,
        clients: 2,
        batch_sessions: 4,
        topologies: 2,
        lm_every: 0,
        incremental_sessions: 0,
        ops_per_client: 6,
        families: vec![Family::Pose2Slam, Family::Planning],
        variables: 6,
        density: 0.25,
    });
    let server = SolverServer::new(ServerConfig::default());
    orianna_server::install_sessions(&server, &plan).unwrap();
    let served = run_load(&server, &plan);
    server.shutdown();
    let naive = run_naive_load(&plan).unwrap_or_else(|e| panic!("{e}"));
    compare_reports(&served.outcomes, &naive.outcomes).unwrap_or_else(|e| panic!("{e}"));
}
