//! Property tests for the arena-backed numeric path (ISSUE: arena-backed
//! numeric execution): on graphs drawn from every generator family, the
//! workspace-arena elimination/back-substitution must match the
//! allocating reference path, and the blocked matmul micro-kernel must
//! match a naive triple loop, both within 1e-12 (in practice the paths
//! are engineered to be bitwise identical).

use orianna_graph::natural_ordering;
use orianna_math::Mat;
use orianna_solver::{eliminate, SolvePlan};
use orianna_verify::{generate, Family, GenConfig};
use proptest::prelude::*;

fn family_of(idx: usize) -> Family {
    Family::ALL[idx % Family::ALL.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arena `solve_in` agrees with the reference eliminate +
    /// back-substitute pipeline on every generator family.
    #[test]
    fn arena_solve_matches_reference(
        fam in 0usize..4,
        vars in 3usize..10,
        dstep in 0usize..5,
        seed in 0u64..512,
    ) {
        let g = generate(&GenConfig::new(family_of(fam), vars, dstep as f64 * 0.25, seed));
        let sys = g.linearize();
        let ordering = natural_ordering(&g);
        let (bn, ref_stats) = eliminate(&sys, &ordering).expect("reference eliminates");
        let delta_ref = bn.back_substitute().expect("reference back-substitutes");

        let plan = SolvePlan::for_system(&sys, ordering.as_slice()).expect("plan builds");
        let mut ws = plan.workspace();
        let delta = plan.solve_in(&sys, &mut ws).expect("arena solves");

        prop_assert_eq!(delta.len(), delta_ref.len());
        for i in 0..delta.len() {
            prop_assert!(
                (delta[i] - delta_ref[i]).abs() <= 1e-12,
                "delta[{}]: {} vs {}", i, delta[i], delta_ref[i]
            );
        }
        prop_assert_eq!(ws.stats().len(), ref_stats.steps.len());
        for (a, b) in ws.stats().iter().zip(&ref_stats.steps) {
            prop_assert_eq!(a.var, b.var);
            prop_assert_eq!(a.rows, b.rows);
            prop_assert_eq!(a.cols, b.cols);
            prop_assert!((a.density - b.density).abs() <= 1e-12);
        }
    }

    /// Arena `execute_in` reproduces the reference Bayes net: every
    /// conditional `(R, S…, d)` agrees without sign normalization (the
    /// two paths run the same Householder schedule).
    #[test]
    fn arena_conditionals_match_reference(
        fam in 0usize..4,
        vars in 3usize..9,
        dstep in 0usize..5,
        seed in 512u64..1024,
    ) {
        let g = generate(&GenConfig::new(family_of(fam), vars, dstep as f64 * 0.25, seed));
        let sys = g.linearize();
        let ordering = natural_ordering(&g);
        let (bn_ref, _) = eliminate(&sys, &ordering).expect("reference eliminates");

        let plan = SolvePlan::for_system(&sys, ordering.as_slice()).expect("plan builds");
        let mut ws = plan.workspace();
        let (bn, _) = plan.execute_in(&sys, &mut ws).expect("arena eliminates");

        prop_assert_eq!(bn.conditionals.len(), bn_ref.conditionals.len());
        for (c, r) in bn.conditionals.iter().zip(&bn_ref.conditionals) {
            prop_assert_eq!(c.var, r.var);
            prop_assert!((&c.r - &r.r).max_abs() <= 1e-12);
            prop_assert_eq!(c.parents.len(), r.parents.len());
            for ((pv, ps), (qv, qs)) in c.parents.iter().zip(&r.parents) {
                prop_assert_eq!(pv, qv);
                prop_assert!((ps - qs).max_abs() <= 1e-12);
            }
            for d in 0..c.rhs.len() {
                prop_assert!((c.rhs[d] - r.rhs[d]).abs() <= 1e-12);
            }
        }
    }

    /// The blocked column-panel matmul agrees with a naive triple loop on
    /// Gram products of Jacobian blocks from generated graphs.
    #[test]
    fn blocked_matmul_matches_naive_on_jacobians(
        fam in 0usize..4,
        vars in 3usize..9,
        seed in 0u64..512,
    ) {
        let g = generate(&GenConfig::new(family_of(fam), vars, 0.5, seed));
        let sys = g.linearize();
        for f in &sys.factors {
            for blk in &f.blocks {
                let at = blk.transpose();
                let blocked = at.mul_mat(blk);
                let naive = naive_mul(&at, blk);
                prop_assert!(
                    (&blocked - &naive).max_abs() <= 1e-12,
                    "gram product diverged: {:?}", blk.shape()
                );
            }
            // Cross products between adjacent blocks exercise rectangular
            // shapes with every chunk-width remainder.
            for w in f.blocks.windows(2) {
                let at = w[0].transpose();
                let blocked = at.mul_mat(&w[1]);
                let naive = naive_mul(&at, &w[1]);
                prop_assert!((&blocked - &naive).max_abs() <= 1e-12);
            }
        }
    }
}

fn naive_mul(a: &Mat, b: &Mat) -> Mat {
    assert_eq!(a.cols(), b.rows());
    let mut out = Mat::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut acc = 0.0;
            for k in 0..a.cols() {
                acc += a[(i, k)] * b[(k, j)];
            }
            out[(i, j)] = acc;
        }
    }
    out
}
