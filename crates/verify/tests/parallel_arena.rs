//! Property tests for within-solve parallelism (ISSUE: parallel arena
//! elimination): on graphs drawn from every generator family, the
//! level-scheduled parallel arena path must be **bitwise identical** to
//! the serial arena path at every forced thread count — delta vector,
//! elimination stats, and the incremental wildfire solution alike. Run
//! under the CI `ORIANNA_THREADS` × `ORIANNA_NO_SIMD` matrix, these
//! cases cover the thread-count × SIMD grid of the determinism contract.

use orianna_graph::{natural_ordering, BetweenFactor, Factor, PriorFactor, Variable};
use orianna_lie::Pose2;
use orianna_math::Parallelism;
use orianna_solver::{IncrementalSolver, SolvePlan};
use orianna_verify::{generate, Family, GenConfig};
use proptest::prelude::*;
use std::sync::Arc;

fn family_of(idx: usize) -> Family {
    Family::ALL[idx % Family::ALL.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `solve_in_with` at forced thread counts 2/4/8 reproduces
    /// `solve_in` bit for bit: the delta vector and every elimination
    /// stat. `with_threads` is not cost-gated, so dispatch happens even
    /// on these small graphs — the test exercises the real worker path.
    #[test]
    fn parallel_arena_is_bitwise_identical_to_serial(
        fam in 0usize..4,
        vars in 3usize..16,
        dstep in 0usize..5,
        seed in 0u64..512,
    ) {
        let g = generate(&GenConfig::new(family_of(fam), vars, dstep as f64 * 0.25, seed));
        let sys = g.linearize();
        let ordering = natural_ordering(&g);
        let plan = SolvePlan::for_system(&sys, ordering.as_slice()).expect("plan builds");

        let mut ws = plan.workspace();
        let delta_ref = plan.solve_in(&sys, &mut ws).expect("serial arena solves").clone();
        let stats_ref = ws.stats().to_vec();

        for threads in [2usize, 4, 8] {
            let par = Parallelism::with_threads(threads);
            let mut wsp = plan.workspace();
            let delta = plan
                .solve_in_with(&sys, &mut wsp, &par)
                .expect("parallel arena solves");
            prop_assert_eq!(delta.len(), delta_ref.len());
            for i in 0..delta.len() {
                prop_assert!(
                    delta[i].to_bits() == delta_ref[i].to_bits(),
                    "delta[{}] diverged at {} threads", i, threads
                );
            }
            prop_assert_eq!(wsp.stats().len(), stats_ref.len());
            for (i, (a, b)) in wsp.stats().iter().zip(&stats_ref).enumerate() {
                prop_assert!(a == b, "stats[{}] diverged at {} threads", i, threads);
            }
        }
    }

    /// A workspace that has run parallel regions still serves the plain
    /// serial entry point unchanged — mixing entry points on one
    /// workspace never contaminates results.
    #[test]
    fn workspace_reuse_across_entry_points_is_stable(
        fam in 0usize..4,
        vars in 3usize..10,
        seed in 0u64..256,
    ) {
        let g = generate(&GenConfig::new(family_of(fam), vars, 0.5, seed));
        let sys = g.linearize();
        let ordering = natural_ordering(&g);
        let plan = SolvePlan::for_system(&sys, ordering.as_slice()).expect("plan builds");

        let mut ws = plan.workspace();
        let delta_ref = plan.solve_in(&sys, &mut ws).expect("serial solves").clone();
        let par = Parallelism::with_threads(4);
        plan.solve_in_with(&sys, &mut ws, &par).expect("parallel solves");
        let delta = plan.solve_in(&sys, &mut ws).expect("serial solves again");
        for i in 0..delta.len() {
            prop_assert!(delta[i].to_bits() == delta_ref[i].to_bits(), "delta[{}]", i);
        }
    }

    /// The incremental solver's parallel wildfire waves reproduce the
    /// serial DFS bit for bit over a branching (binary-tree) pose graph,
    /// where waves actually hold several independent cliques.
    #[test]
    fn parallel_wildfire_matches_serial_bitwise(
        n in 4usize..24,
        seed in 0u64..256,
    ) {
        let noise = |k: u64| {
            let bits = (seed ^ k).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            ((bits >> 40) as f64 / (1u64 << 24) as f64 - 0.5) * 0.1
        };
        let run = |par: Parallelism| {
            let mut solver = IncrementalSolver::new();
            solver.set_parallelism(par);
            let anchor = Pose2::new(noise(0), noise(1), noise(2));
            let mut ids = vec![solver.add_variable(Variable::Pose2(anchor))];
            solver
                .update(vec![Arc::new(PriorFactor::pose2(ids[0], anchor, 0.1)) as Arc<dyn Factor>])
                .expect("anchor update");
            for i in 1..n {
                let k = i as u64;
                let parent = ids[(i - 1) / 2];
                let motion = Pose2::new(noise(3 * k), 1.0 + noise(3 * k + 1), noise(3 * k + 2));
                let guess = Pose2::new(0.0, i as f64, 0.0);
                let v = solver.add_variable(Variable::Pose2(guess));
                solver
                    .update(vec![
                        Arc::new(BetweenFactor::pose2(parent, v, motion, 0.2)) as Arc<dyn Factor>
                    ])
                    .expect("tree update");
                ids.push(v);
            }
            solver.relinearize().expect("relinearize");
            solver.delta().clone()
        };
        let delta_ref = run(Parallelism::serial());
        for threads in [2usize, 4, 8] {
            let delta = run(Parallelism::with_threads(threads));
            prop_assert_eq!(delta.len(), delta_ref.len());
            for i in 0..delta.len() {
                prop_assert!(
                    delta[i].to_bits() == delta_ref[i].to_bits(),
                    "delta[{}] diverged at {} threads", i, threads
                );
            }
        }
    }
}
