//! Server instrumentation: request/batch/cache counters and a lock-free
//! latency histogram with tail quantiles.
//!
//! All counters are relaxed atomics — they are observability, not
//! synchronization, and must never serialize the worker loop. Latency is
//! recorded into power-of-two nanosecond buckets (64 of them cover
//! 1 ns..≈584 years), so `p50/p95/p99` are bucket-resolution estimates:
//! the reported value is the upper bound of the bucket containing the
//! quantile, at most 2× the true value. The load generator additionally
//! records exact client-side percentiles for the committed baselines;
//! the histogram is for always-on production telemetry.

use std::sync::atomic::{AtomicU64, Ordering};

const BUCKETS: usize = 64;

/// A power-of-two latency histogram.
#[derive(Debug)]
pub struct LatencyHistogram {
    counts: [AtomicU64; BUCKETS],
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Records one sample.
    pub fn record(&self, ns: u64) {
        // Bucket b holds samples in [2^b, 2^(b+1)); 0 ns lands in bucket 0.
        let b = (64 - ns.max(1).leading_zeros() - 1) as usize;
        self.counts[b].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// A point-in-time copy for quantile computation.
    pub fn snapshot(&self) -> LatencySnapshot {
        LatencySnapshot {
            counts: std::array::from_fn(|i| self.counts[i].load(Ordering::Relaxed)),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }
}

/// An immutable histogram copy.
#[derive(Debug, Clone)]
pub struct LatencySnapshot {
    counts: [u64; BUCKETS],
    sum_ns: u64,
    max_ns: u64,
}

impl LatencySnapshot {
    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count()).unwrap_or(0)
    }

    /// Largest recorded sample.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Upper bound of the bucket holding quantile `q` in `[0, 1]`
    /// (0 when empty). Monotone in `q`.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        // Rank of the q-th sample, 1-based, clamped to [1, n].
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Upper bound of bucket b, capped by the observed max.
                let upper = if b + 1 >= 64 {
                    u64::MAX
                } else {
                    (1u64 << (b + 1)) - 1
                };
                return upper.min(self.max_ns);
            }
        }
        self.max_ns
    }
}

/// Aggregated cache statistics across every shard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Plan lookups served from a shard.
    pub plan_hits: u64,
    /// Plan lookups that built a fresh plan.
    pub plan_misses: u64,
    /// Workspace checkouts served by a parked arena.
    pub workspace_reuses: u64,
    /// Workspace checkouts that allocated a fresh arena.
    pub workspace_builds: u64,
    /// Workspaces dropped by pool-cap overflow or invalidation.
    pub workspace_evictions: u64,
    /// Plans dropped by invalidation.
    pub invalidations: u64,
}

/// The server's always-on counters.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests accepted into the queue.
    pub accepted: AtomicU64,
    /// Requests refused with `Overloaded`.
    pub rejected_overload: AtomicU64,
    /// Requests completed (successfully or with a solve error).
    pub completed: AtomicU64,
    /// Requests that completed with a solve error.
    pub solve_errors: AtomicU64,
    /// Plan executions (a batch of k requests counts once).
    pub batches: AtomicU64,
    /// Requests that rode a batch of size ≥ 2.
    pub coalesced: AtomicU64,
    /// Largest batch executed.
    pub max_batch: AtomicU64,
    /// End-to-end latency (submit → outcome) histogram.
    pub latency: LatencyHistogram,
}

impl Metrics {
    /// Records the execution of one batch of `k` requests.
    pub fn record_batch(&self, k: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        if k >= 2 {
            self.coalesced.fetch_add(k, Ordering::Relaxed);
        }
        self.max_batch.fetch_max(k, Ordering::Relaxed);
    }
}

/// A point-in-time copy of every counter, plus the cache totals.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Requests accepted into the queue.
    pub accepted: u64,
    /// Requests refused with `Overloaded`.
    pub rejected_overload: u64,
    /// Requests completed.
    pub completed: u64,
    /// Completed requests whose solve failed.
    pub solve_errors: u64,
    /// Plan executions.
    pub batches: u64,
    /// Requests that rode a batch of size ≥ 2.
    pub coalesced: u64,
    /// Largest batch executed.
    pub max_batch: u64,
    /// Aggregated sharded-cache statistics.
    pub cache: CacheStats,
    /// End-to-end latency histogram.
    pub latency: LatencySnapshot,
}

impl MetricsSnapshot {
    pub(crate) fn capture(m: &Metrics, cache: CacheStats) -> Self {
        Self {
            accepted: m.accepted.load(Ordering::Relaxed),
            rejected_overload: m.rejected_overload.load(Ordering::Relaxed),
            completed: m.completed.load(Ordering::Relaxed),
            solve_errors: m.solve_errors.load(Ordering::Relaxed),
            batches: m.batches.load(Ordering::Relaxed),
            coalesced: m.coalesced.load(Ordering::Relaxed),
            max_batch: m.max_batch.load(Ordering::Relaxed),
            cache,
            latency: m.latency.snapshot(),
        }
    }
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "requests: {} accepted, {} rejected (overload), {} completed, {} solve errors",
            self.accepted, self.rejected_overload, self.completed, self.solve_errors
        )?;
        writeln!(
            f,
            "batching: {} plan executions, {} coalesced requests, max batch {}",
            self.batches, self.coalesced, self.max_batch
        )?;
        writeln!(
            f,
            "cache: {} plan hits / {} misses, {} ws reuses / {} builds / {} evictions, {} invalidations",
            self.cache.plan_hits,
            self.cache.plan_misses,
            self.cache.workspace_reuses,
            self.cache.workspace_builds,
            self.cache.workspace_evictions,
            self.cache.invalidations
        )?;
        write!(
            f,
            "latency: p50 ≤ {} ns, p95 ≤ {} ns, p99 ≤ {} ns, max {} ns ({} samples)",
            self.latency.quantile_ns(0.50),
            self.latency.quantile_ns(0.95),
            self.latency.quantile_ns(0.99),
            self.latency.max_ns(),
            self.latency.count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = LatencyHistogram::default();
        for ns in [100u64, 200, 300, 400, 100_000] {
            h.record(ns);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 5);
        assert_eq!(s.max_ns(), 100_000);
        let p50 = s.quantile_ns(0.50);
        assert!((200..=511).contains(&p50), "p50={p50}");
        // The tail quantile lands in the bucket of the extreme sample.
        let p99 = s.quantile_ns(0.99);
        assert!((65_536..=131_071).contains(&p99), "p99={p99}");
        assert!(s.quantile_ns(0.0) <= s.quantile_ns(1.0));
    }

    #[test]
    fn empty_histogram_is_zero() {
        let s = LatencyHistogram::default().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile_ns(0.5), 0);
        assert_eq!(s.mean_ns(), 0);
    }

    #[test]
    fn quantile_is_capped_by_max() {
        let h = LatencyHistogram::default();
        h.record(1_000_000);
        let s = h.snapshot();
        assert_eq!(s.quantile_ns(0.99), 1_000_000, "cap at observed max");
    }

    #[test]
    fn zero_and_tiny_samples_are_recorded() {
        let h = LatencyHistogram::default();
        h.record(0);
        h.record(1);
        assert_eq!(h.snapshot().count(), 2);
    }

    #[test]
    fn batch_recording_tracks_coalescing() {
        let m = Metrics::default();
        m.record_batch(1);
        m.record_batch(4);
        m.record_batch(2);
        assert_eq!(m.batches.load(Ordering::Relaxed), 3);
        assert_eq!(m.coalesced.load(Ordering::Relaxed), 6);
        assert_eq!(m.max_batch.load(Ordering::Relaxed), 4);
    }
}
