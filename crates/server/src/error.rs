//! Structured server errors.
//!
//! Every failure mode of the serving runtime is an enum variant — the
//! server never panics on bad input, a full queue, or a failed solve, and
//! never drops a request silently: a submitted request either completes
//! with an outcome or its ticket resolves to one of these errors.

use crate::session::SessionId;
use orianna_solver::SolveError;

/// A request the server could not serve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerError {
    /// The bounded request queue was full at submission time. This is
    /// *backpressure*, not failure: the caller should retry later or shed
    /// load. Carries the configured capacity so operators can tell which
    /// bound fired.
    Overloaded {
        /// Queue capacity at the time of rejection.
        capacity: usize,
    },
    /// The server is shutting down and no longer accepts requests.
    ShuttingDown,
    /// The request named a session this server never created.
    UnknownSession(SessionId),
    /// The request kind does not apply to the session's flavor (e.g. an
    /// incremental extension sent to a batch session).
    WrongFlavor {
        /// Session the request addressed.
        session: SessionId,
        /// What the request asked for.
        requested: &'static str,
    },
    /// The underlying solve failed; the structured solver error is
    /// preserved for triage.
    Solve(SolveError),
    /// A worker or client abandoned a lock while holding it (a panic in
    /// foreign code); the session or ticket is unusable.
    Poisoned,
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Overloaded { capacity } => {
                write!(f, "request queue full (capacity {capacity}); retry later")
            }
            ServerError::ShuttingDown => write!(f, "server is shutting down"),
            ServerError::UnknownSession(id) => write!(f, "unknown session {}", id.0),
            ServerError::WrongFlavor { session, requested } => write!(
                f,
                "session {} does not support {requested} requests",
                session.0
            ),
            ServerError::Solve(e) => write!(f, "solve failed: {e}"),
            ServerError::Poisoned => write!(f, "internal lock poisoned by a panic"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Solve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SolveError> for ServerError {
    fn from(e: SolveError) -> Self {
        ServerError::Solve(e)
    }
}
