//! Long-lived per-robot/per-user solver sessions.
//!
//! A session owns the mutable solver state for one tenant: either a
//! batch nonlinear problem (Gauss-Newton or Levenberg-Marquardt over a
//! fixed-topology [`FactorGraph`]) or an incremental Bayes-tree solver
//! whose structure grows over time. Sessions are `Sync` — a mutex guards
//! the mutable state — and every solve entry point here is
//! **deterministic**: batched results are bitwise-identical to
//! sequential ones at any worker count, shard count, or batch size.
//! The server gets its coarse parallelism from fanning out *across*
//! sessions in a batch; *within* one solve it additionally inherits the
//! level-scheduled parallel arena, which is bitwise-identical to the
//! serial arena at every thread count (see `orianna_solver::workspace`),
//! so within-solve threading never weakens the determinism contract.
//!
//! The sequential oracle ([`crate::oracle`]) replays traffic through
//! these same methods with a single-threaded cache, so server and
//! reference execute byte-for-byte identical per-request code.

use crate::error::ServerError;
use orianna_graph::{BetweenFactor, Factor, FactorGraph, PriorFactor, Values, VarId, Variable};
use orianna_lie::Pose2;
use orianna_math::Vec64;
use orianna_solver::{
    GaussNewton, GaussNewtonSettings, IncrementalSolver, LevenbergMarquardt,
    LevenbergMarquardtSettings, SolveError, SolvePlan, Workspace,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Identifier of a session on one server (its creation index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

/// A deterministic value perturbation applied before a batch solve:
/// the session's estimates are reset to its initial values retracted by
/// a seeded uniform tangent step. This is how fleet traffic reuses one
/// topology with fresh measurements per request — and why request
/// outcomes are order-independent: each solve is a pure function of
/// `(session initial state, perturb)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Perturb {
    /// Seed of the tangent draw.
    pub seed: u64,
    /// Uniform half-width of each tangent coordinate, in millionths
    /// (fixed-point so the request type stays `Eq`/hashable). 50_000
    /// means ±0.05.
    pub scale_millionths: u32,
}

impl Perturb {
    /// A perturbation of ±`scale` per tangent coordinate.
    pub fn new(seed: u64, scale: f64) -> Self {
        Self {
            seed,
            scale_millionths: (scale * 1e6).round().clamp(0.0, u32::MAX as f64) as u32,
        }
    }

    fn scale(&self) -> f64 {
        self.scale_millionths as f64 * 1e-6
    }
}

/// SplitMix64 — the tiny, seedable, jump-free generator used for all
/// deterministic perturbation/traffic draws. Stable across platforms.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform draw in `[-scale, scale]` from the k-th stream position.
fn uniform(seed: u64, k: u64, scale: f64) -> f64 {
    let bits = splitmix64(seed ^ k.wrapping_mul(0x2545_f491_4f6c_dd1d));
    // 53-bit mantissa → [0, 1) → [-scale, scale].
    let unit = (bits >> 11) as f64 / (1u64 << 53) as f64;
    (2.0 * unit - 1.0) * scale
}

/// The seeded tangent step a [`Perturb`] applies to `dim` coordinates.
pub fn perturb_delta(dim: usize, perturb: &Perturb) -> Vec64 {
    let scale = perturb.scale();
    let mut d = Vec64::zeros(dim);
    for (k, slot) in d.as_mut_slice().iter_mut().enumerate() {
        *slot = uniform(perturb.seed, k as u64, scale);
    }
    d
}

/// FNV-1a over the exact bit patterns of every state coordinate, in
/// variable-id order. Two estimates digest equal iff they are bitwise
/// identical — the currency of the determinism guarantees.
pub fn values_digest(values: &Values) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |x: f64| {
        for byte in x.to_bits().to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for (_, var) in values.iter() {
        match var {
            Variable::Pose2(p) => {
                mix(p.theta());
                mix(p.x());
                mix(p.y());
            }
            Variable::Pose3(p) => {
                for c in p.phi() {
                    mix(c);
                }
                for c in p.translation() {
                    mix(c);
                }
            }
            Variable::Point2(p) => {
                for &c in p.iter() {
                    mix(c);
                }
            }
            Variable::Point3(p) => {
                for &c in p.iter() {
                    mix(c);
                }
            }
            Variable::Vector(v) => {
                for &c in v.as_slice() {
                    mix(c);
                }
            }
        }
    }
    h
}

/// The result of one served request.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveOutcome {
    /// Session that served the request.
    pub session: SessionId,
    /// Optimizer iterations (or incremental steps applied).
    pub iterations: usize,
    /// Objective before the solve (0 for incremental extensions).
    pub initial_error: f64,
    /// Objective after the solve (Δ norm for incremental extensions).
    pub final_error: f64,
    /// Whether the optimizer converged.
    pub converged: bool,
    /// Bit-exact digest of the post-solve estimates.
    pub digest: u64,
    /// Size of the coalesced batch this request rode in (1 = unbatched).
    pub batch_size: usize,
}

/// Batch-session optimizer flavor.
#[derive(Debug, Clone)]
pub enum BatchFlavor {
    /// Gauss-Newton — the batchable flavor: fixed topology keys a shared
    /// plan, so same-topology requests coalesce through one symbolic
    /// factorization.
    GaussNewton(GaussNewtonSettings),
    /// Levenberg-Marquardt — served unbatched, through a **session-local**
    /// cached plan: λ scales only the *values* of the appended damping
    /// rows, never their sparsity, so one symbolic factorization of the
    /// damped system serves every iteration of every request. (LM still
    /// does not batch across sessions — requests at different
    /// linearization trajectories have nothing symbolic to share beyond
    /// the session.)
    Levenberg(LevenbergMarquardtSettings),
}

/// Gauss-Newton settings as the server runs them. Historically this
/// forced parallelism serial — the old batched executor's merge order
/// depended on the thread count. The arena path the server now runs is
/// bitwise-identical to serial at every thread count (parallel levels
/// write disjoint regions through the same per-step kernel), so the
/// caller's parallelism passes through untouched and the determinism
/// contract holds by construction.
pub fn server_gn_settings(s: GaussNewtonSettings) -> GaussNewtonSettings {
    s
}

/// Levenberg-Marquardt settings as the server runs them (pass-through —
/// see [`server_gn_settings`]).
pub fn server_lm_settings(s: LevenbergMarquardtSettings) -> LevenbergMarquardtSettings {
    s
}

enum Inner {
    Gn {
        graph: FactorGraph,
        initial: Values,
        settings: GaussNewtonSettings,
    },
    Lm {
        graph: FactorGraph,
        initial: Values,
        settings: LevenbergMarquardtSettings,
        /// Session-local plan over the damped structure and its arena,
        /// built lazily on the first served request (topology is fixed
        /// for the session's lifetime, so they never invalidate). Boxed
        /// to keep the variant near the others' size.
        plan: Option<Box<(SolvePlan, Workspace)>>,
    },
    Incremental {
        solver: Box<IncrementalSolver>,
        tail: VarId,
        seed: u64,
        steps: u64,
    },
}

/// One tenant's long-lived solver state.
pub struct Session {
    id: SessionId,
    /// Topology fingerprint for plan sharing; `None` for flavors served
    /// without a shared plan (LM, incremental).
    fingerprint: Option<u64>,
    /// Plan-cache ordering tag (GN sessions).
    tag: u8,
    inner: Mutex<Inner>,
    solves: AtomicU64,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("id", &self.id)
            .field("fingerprint", &self.fingerprint)
            .field("solves", &self.solves.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Session {
    /// Creates a batch session over a fixed-topology graph and **warms it
    /// up**: the estimate is converged once at creation, so the session's
    /// initial values sit at the optimizer's fixed point and every
    /// subsequent request is a warm tracking solve around it. This
    /// one-time cost is exactly what a stateless per-request service pays
    /// *on every request* — the heart of the serving speedup — and the
    /// warm-up is serial and deterministic, so sessions built from the
    /// same graph are bitwise interchangeable.
    ///
    /// # Errors
    /// Propagates the warm-up's [`SolveError`] (e.g. an unconstrained
    /// variable); nothing is registered on failure.
    pub fn batch(
        id: SessionId,
        mut graph: FactorGraph,
        flavor: BatchFlavor,
    ) -> Result<Self, ServerError> {
        match flavor {
            BatchFlavor::GaussNewton(settings) => {
                let settings = server_gn_settings(settings);
                GaussNewton::new(settings).optimize(&mut graph)?;
                let initial = graph.values().clone();
                Ok(Self {
                    id,
                    fingerprint: Some(graph.structure_fingerprint()),
                    tag: settings.ordering.cache_tag(),
                    inner: Mutex::new(Inner::Gn {
                        graph,
                        initial,
                        settings,
                    }),
                    solves: AtomicU64::new(0),
                })
            }
            BatchFlavor::Levenberg(settings) => {
                let settings = server_lm_settings(settings);
                LevenbergMarquardt::new(settings).optimize(&mut graph)?;
                let initial = graph.values().clone();
                Ok(Self {
                    id,
                    fingerprint: None,
                    tag: 0,
                    inner: Mutex::new(Inner::Lm {
                        graph,
                        initial,
                        settings,
                        plan: None,
                    }),
                    solves: AtomicU64::new(0),
                })
            }
        }
    }

    /// Creates an incremental (Bayes-tree) session: a seeded anchor pose
    /// with a prior, extended by [`Session::extend`] requests.
    ///
    /// # Errors
    /// Propagates the anchor update's [`SolveError`].
    pub fn incremental(id: SessionId, seed: u64) -> Result<Self, ServerError> {
        let mut solver = IncrementalSolver::new();
        let anchor = Pose2::new(
            uniform(seed, 0, 0.05),
            uniform(seed, 1, 0.2),
            uniform(seed, 2, 0.2),
        );
        let tail = solver.add_variable(Variable::Pose2(anchor));
        solver.update(vec![
            Arc::new(PriorFactor::pose2(tail, anchor, 0.1)) as Arc<dyn Factor>
        ])?;
        Ok(Self {
            id,
            fingerprint: None,
            tag: 0,
            inner: Mutex::new(Inner::Incremental {
                solver: Box::new(solver),
                tail,
                seed,
                steps: 0,
            }),
            solves: AtomicU64::new(0),
        })
    }

    /// This session's id.
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// Topology fingerprint, when this session solves through a shared
    /// plan (the batching key).
    pub fn fingerprint(&self) -> Option<u64> {
        self.fingerprint
    }

    /// Plan-cache ordering tag.
    pub fn tag(&self) -> u8 {
        self.tag
    }

    /// Requests served so far.
    pub fn solves(&self) -> u64 {
        self.solves.load(Ordering::Relaxed)
    }

    /// True when this session accepts [`Session::extend`] requests.
    pub fn is_incremental(&self) -> bool {
        matches!(
            &*self.inner.lock().expect("session lock"),
            Inner::Incremental { .. }
        )
    }

    /// Builds this GN session's solve plan (cache-miss path).
    ///
    /// # Errors
    /// [`ServerError::WrongFlavor`] off the GN flavor; otherwise plan
    /// construction errors.
    pub fn build_plan(&self) -> Result<SolvePlan, SolveError> {
        let inner = self.inner.lock().expect("session lock");
        match &*inner {
            Inner::Gn {
                graph, settings, ..
            } => {
                let ordering = settings.ordering.resolve(graph);
                SolvePlan::for_graph(graph, ordering.as_slice())
            }
            _ => Err(SolveError::PlanMismatch),
        }
    }

    /// Serves one solve on a GN session through a shared plan and an
    /// exclusively-owned workspace. Serial and deterministic: the result
    /// is a pure function of the session's initial state and `perturb`.
    ///
    /// # Errors
    /// [`ServerError::WrongFlavor`] on non-GN sessions; solve errors
    /// otherwise.
    pub fn solve_with_plan(
        &self,
        plan: &SolvePlan,
        ws: &mut Workspace,
        perturb: Option<Perturb>,
    ) -> Result<SolveOutcome, ServerError> {
        let mut inner = self.inner.lock().expect("session lock");
        let Inner::Gn {
            graph,
            initial,
            settings,
        } = &mut *inner
        else {
            return Err(ServerError::WrongFlavor {
                session: self.id,
                requested: "planned Gauss-Newton solve",
            });
        };
        if let Some(p) = &perturb {
            *graph.values_mut() = initial.retract_all(&perturb_delta(initial.total_dim(), p));
        }
        let report = GaussNewton::new(*settings).optimize_with_plan(graph, plan, ws)?;
        self.solves.fetch_add(1, Ordering::Relaxed);
        Ok(SolveOutcome {
            session: self.id,
            iterations: report.iterations,
            initial_error: report.initial_error,
            final_error: report.final_error,
            converged: report.converged,
            digest: values_digest(graph.values()),
            batch_size: 1,
        })
    }

    /// Serves one solve on an LM session (unbatched path). The first
    /// request builds the session's damped-system plan and workspace;
    /// later requests skip the symbolic phase entirely
    /// ([`LevenbergMarquardt::optimize_with_plan`], bitwise identical to
    /// the planless `optimize`).
    ///
    /// # Errors
    /// [`ServerError::WrongFlavor`] on non-LM sessions; solve errors
    /// otherwise.
    pub fn solve_direct(&self, perturb: Option<Perturb>) -> Result<SolveOutcome, ServerError> {
        let mut inner = self.inner.lock().expect("session lock");
        let Inner::Lm {
            graph,
            initial,
            settings,
            plan,
        } = &mut *inner
        else {
            return Err(ServerError::WrongFlavor {
                session: self.id,
                requested: "direct Levenberg-Marquardt solve",
            });
        };
        if let Some(p) = &perturb {
            *graph.values_mut() = initial.retract_all(&perturb_delta(initial.total_dim(), p));
        }
        let lm = LevenbergMarquardt::new(*settings);
        if plan.is_none() {
            let p = lm.plan(graph)?;
            let ws = p.workspace();
            *plan = Some(Box::new((p, ws)));
        }
        let (p, ws) = &mut **plan.as_mut().expect("plan just built");
        let report = lm.optimize_with_plan(graph, p, ws)?;
        self.solves.fetch_add(1, Ordering::Relaxed);
        Ok(SolveOutcome {
            session: self.id,
            iterations: report.iterations,
            initial_error: report.initial_error,
            final_error: report.final_error,
            converged: report.converged,
            digest: values_digest(graph.values()),
            batch_size: 1,
        })
    }

    /// Extends an incremental session by `steps` seeded odometry poses
    /// (one Bayes-tree update each) and reports the new estimate digest.
    /// Deterministic: step k of this session always generates the same
    /// pose and measurement, independent of server scheduling — callers
    /// keep per-session requests closed-loop so steps apply in order.
    ///
    /// # Errors
    /// [`ServerError::WrongFlavor`] on batch sessions; update errors
    /// otherwise.
    pub fn extend(&self, steps: usize) -> Result<SolveOutcome, ServerError> {
        let mut inner = self.inner.lock().expect("session lock");
        let Inner::Incremental {
            solver,
            tail,
            seed,
            steps: done,
        } = &mut *inner
        else {
            return Err(ServerError::WrongFlavor {
                session: self.id,
                requested: "incremental extension",
            });
        };
        for _ in 0..steps {
            *done += 1;
            let k = *done;
            // Odometry with mild seeded noise; the measurement stream is
            // a pure function of (seed, k).
            let motion = Pose2::new(
                uniform(*seed, 3 * k, 0.02),
                1.0 + uniform(*seed, 3 * k + 1, 0.1),
                uniform(*seed, 3 * k + 2, 0.1),
            );
            let guess = Pose2::new(0.0, k as f64, 0.0);
            let v = solver.add_variable(Variable::Pose2(guess));
            solver.update(vec![
                Arc::new(BetweenFactor::pose2(*tail, v, motion, 0.2)) as Arc<dyn Factor>
            ])?;
            *tail = v;
        }
        self.solves.fetch_add(1, Ordering::Relaxed);
        Ok(SolveOutcome {
            session: self.id,
            iterations: steps,
            initial_error: 0.0,
            final_error: solver.delta().norm(),
            converged: true,
            digest: values_digest(&solver.estimate()),
            batch_size: 1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orianna_graph::GpsFactor;

    fn chain_graph(n: usize, off: f64) -> FactorGraph {
        let mut g = FactorGraph::new();
        let ids: Vec<_> = (0..n)
            .map(|i| g.add_pose2(Pose2::new(0.1, i as f64 + off, -0.1)))
            .collect();
        g.add_factor(PriorFactor::pose2(ids[0], Pose2::identity(), 0.05));
        for w in ids.windows(2) {
            g.add_factor(BetweenFactor::pose2(
                w[0],
                w[1],
                Pose2::new(0.0, 1.0, 0.0),
                0.1,
            ));
        }
        g.add_factor(GpsFactor::new(ids[n - 1], &[0.0, (n - 1) as f64], 0.3));
        g
    }

    #[test]
    fn perturbed_solves_are_pure_functions_of_the_perturb() {
        let s = Session::batch(
            SessionId(0),
            chain_graph(6, 0.3),
            BatchFlavor::GaussNewton(GaussNewtonSettings::default()),
        )
        .unwrap();
        let plan = s.build_plan().unwrap();
        let mut ws = plan.workspace();
        let p = Perturb::new(42, 0.05);
        let a = s.solve_with_plan(&plan, &mut ws, Some(p)).unwrap();
        // Different perturb in between — outcome of p must not change.
        let other = s
            .solve_with_plan(&plan, &mut ws, Some(Perturb::new(7, 0.05)))
            .unwrap();
        let b = s.solve_with_plan(&plan, &mut ws, Some(p)).unwrap();
        assert_eq!(a.digest, b.digest, "order-independent outcomes");
        assert_eq!(a.final_error.to_bits(), b.final_error.to_bits());
        assert_ne!(a.digest, other.digest, "perturbs actually differ");
        assert_eq!(s.solves(), 3);
    }

    #[test]
    fn digest_tracks_bit_level_changes() {
        let g = chain_graph(4, 0.0);
        let d1 = values_digest(g.values());
        let mut g2 = g.clone();
        let dim = g2.values().total_dim();
        let mut delta = Vec64::zeros(dim);
        delta.as_mut_slice()[0] = 1e-14;
        g2.retract_all(&delta);
        assert_ne!(d1, values_digest(g2.values()));
        assert_eq!(d1, values_digest(g.values()), "digest is stable");
    }

    #[test]
    fn wrong_flavor_is_structured() {
        let s = Session::incremental(SessionId(3), 9).unwrap();
        let err = s.solve_direct(None).unwrap_err();
        assert!(matches!(err, ServerError::WrongFlavor { .. }));
        let gn = Session::batch(
            SessionId(4),
            chain_graph(3, 0.1),
            BatchFlavor::GaussNewton(GaussNewtonSettings::default()),
        )
        .unwrap();
        assert!(matches!(gn.extend(1), Err(ServerError::WrongFlavor { .. })));
    }

    #[test]
    fn incremental_extension_is_deterministic() {
        let run = || {
            let s = Session::incremental(SessionId(1), 77).unwrap();
            let mut digests = Vec::new();
            for _ in 0..3 {
                digests.push(s.extend(2).unwrap().digest);
            }
            digests
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn lm_sessions_solve_unbatched() {
        let s = Session::batch(
            SessionId(2),
            chain_graph(5, 0.4),
            BatchFlavor::Levenberg(LevenbergMarquardtSettings::default()),
        )
        .unwrap();
        assert_eq!(s.fingerprint(), None, "LM does not share plans");
        let out = s.solve_direct(Some(Perturb::new(5, 0.02))).unwrap();
        assert!(out.final_error < out.initial_error);
    }

    #[test]
    fn perturb_fixed_point_roundtrip() {
        let p = Perturb::new(1, 0.05);
        assert!((p.scale() - 0.05).abs() < 1e-9);
        let d = perturb_delta(8, &p);
        assert!(d.as_slice().iter().all(|x| x.abs() <= 0.05));
        assert_eq!(
            d.as_slice(),
            perturb_delta(8, &p).as_slice(),
            "deterministic"
        );
    }
}
