//! Seeded synthetic fleet traffic: thousands of sessions, mixed
//! topologies, concurrent closed-loop clients.
//!
//! A [`LoadSpec`] expands deterministically into a [`TrafficPlan`]: the
//! session roster (batch GN/LM sessions drawn from a small pool of shared
//! generator topologies, plus incremental sessions each owned by exactly
//! one client) and one op script per client. Batch solves carry a seeded
//! perturbation, so they are order-independent and the same plan can be
//! replayed through the concurrent server ([`run_load`]), the sequential
//! oracle ([`crate::oracle::replay_sequential`]), or the naive
//! plan-per-request baseline ([`run_naive_load`]) and compared bitwise.
//! Incremental ops appear only in their owner's script, which executes
//! closed-loop, so per-session op order is identical in every replay.

use crate::error::ServerError;
use crate::server::{Request, SolverServer};
use crate::session::{splitmix64, BatchFlavor, Perturb, Session, SessionId, SolveOutcome};
use orianna_solver::{GaussNewtonSettings, LevenbergMarquardtSettings};
use orianna_verify::{generate, Family, GenConfig};
use std::time::Instant;

/// Perturbation half-width applied by generated traffic — small enough to
/// stay inside every family's convergence basin.
pub const LOAD_PERTURB_SCALE: f64 = 0.02;

/// Knobs describing a synthetic fleet workload.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Master seed; everything below derives from it.
    pub seed: u64,
    /// Concurrent closed-loop client threads.
    pub clients: usize,
    /// Batch sessions (Gauss-Newton unless claimed by `lm_every`).
    pub batch_sessions: usize,
    /// Distinct topologies shared among the batch sessions — smaller
    /// values mean more same-topology coalescing.
    pub topologies: usize,
    /// Every n-th batch session solves with Levenberg-Marquardt
    /// (unbatched path); 0 disables LM traffic.
    pub lm_every: usize,
    /// Incremental Bayes-tree sessions, each owned by one client.
    pub incremental_sessions: usize,
    /// Requests each client issues.
    pub ops_per_client: usize,
    /// Generator families to draw topologies from.
    pub families: Vec<Family>,
    /// Primary-variable count per generated graph.
    pub variables: usize,
    /// Optional-factor density in `[0, 1]`.
    pub density: f64,
}

impl Default for LoadSpec {
    fn default() -> Self {
        Self {
            seed: 0xF1EE7,
            clients: 8,
            batch_sessions: 64,
            topologies: 6,
            lm_every: 0,
            incremental_sessions: 8,
            ops_per_client: 50,
            families: Family::ALL.to_vec(),
            variables: 10,
            density: 0.3,
        }
    }
}

/// One session in the roster.
#[derive(Debug, Clone)]
pub enum SessionSpec {
    /// A fixed-topology batch session.
    Batch {
        /// Generator config — sessions sharing a config share a topology
        /// fingerprint (the batching key).
        cfg: GenConfig,
        /// Solve with LM (unbatched) instead of GN.
        lm: bool,
    },
    /// An incremental session growing from a seeded anchor.
    Incremental {
        /// Anchor/odometry seed.
        seed: u64,
    },
}

/// One scripted client request.
#[derive(Debug, Clone, Copy)]
pub enum OpSpec {
    /// Perturb-and-solve a batch session (by roster index).
    Solve {
        /// Roster index of the target session.
        session: usize,
        /// The deterministic perturbation.
        perturb: Perturb,
    },
    /// Extend an incremental session (by roster index).
    Extend {
        /// Roster index of the target session.
        session: usize,
        /// Poses to append.
        steps: usize,
    },
}

/// A fully expanded, deterministic workload: roster + per-client scripts.
#[derive(Debug, Clone)]
pub struct TrafficPlan {
    /// Session roster; roster index == [`SessionId`] after
    /// [`install_sessions`].
    pub sessions: Vec<SessionSpec>,
    /// One op script per client, executed closed-loop in order.
    pub scripts: Vec<Vec<OpSpec>>,
}

impl TrafficPlan {
    /// Total requests across every client.
    pub fn total_ops(&self) -> usize {
        self.scripts.iter().map(Vec::len).sum()
    }
}

/// Expands a spec into concrete traffic. Pure: same spec, same plan.
pub fn plan_traffic(spec: &LoadSpec) -> TrafficPlan {
    let clients = spec.clients.max(1);
    let topologies = spec.topologies.max(1);
    let families = if spec.families.is_empty() {
        Family::ALL.to_vec()
    } else {
        spec.families.clone()
    };

    // Topology pool: sessions sharing an entry share a fingerprint.
    let topo_pool: Vec<GenConfig> = (0..topologies)
        .map(|t| {
            GenConfig::new(
                families[t % families.len()],
                spec.variables + (t / families.len()) * 2,
                spec.density,
                splitmix64(spec.seed ^ 0xA11CE ^ t as u64),
            )
        })
        .collect();

    let mut sessions: Vec<SessionSpec> = (0..spec.batch_sessions)
        .map(|s| SessionSpec::Batch {
            cfg: topo_pool[s % topologies],
            lm: spec.lm_every > 0 && s % spec.lm_every == spec.lm_every - 1,
        })
        .collect();
    let incr_base = sessions.len();
    sessions.extend(
        (0..spec.incremental_sessions).map(|j| SessionSpec::Incremental {
            seed: splitmix64(spec.seed ^ 0x1BC ^ j as u64),
        }),
    );

    // Scripts: each incremental session belongs to client `j % clients`;
    // batch targets are drawn by seeded hash.
    let mut scripts: Vec<Vec<OpSpec>> = vec![Vec::new(); clients];
    for (c, script) in scripts.iter_mut().enumerate() {
        let owned_incr: Vec<usize> = (0..spec.incremental_sessions)
            .filter(|j| j % clients == c)
            .map(|j| incr_base + j)
            .collect();
        for i in 0..spec.ops_per_client {
            let draw = splitmix64(spec.seed ^ ((c as u64) << 32) ^ i as u64);
            let use_incr = !owned_incr.is_empty() && (spec.batch_sessions == 0 || i % 4 == 3);
            if use_incr {
                script.push(OpSpec::Extend {
                    session: owned_incr[(draw >> 8) as usize % owned_incr.len()],
                    steps: 1 + (draw as usize % 3),
                });
            } else if spec.batch_sessions > 0 {
                script.push(OpSpec::Solve {
                    session: (draw >> 16) as usize % spec.batch_sessions,
                    perturb: Perturb::new(draw, LOAD_PERTURB_SCALE),
                });
            }
        }
    }
    TrafficPlan { sessions, scripts }
}

/// Registers the plan's roster on `server`, in roster order — so roster
/// index `i` becomes `SessionId(i)` on a fresh server.
///
/// # Errors
/// Propagates incremental-anchor solve errors.
pub fn install_sessions(
    server: &SolverServer,
    plan: &TrafficPlan,
) -> Result<Vec<SessionId>, ServerError> {
    plan.sessions
        .iter()
        .map(|spec| match spec {
            SessionSpec::Batch { cfg, lm } => {
                let graph = generate(cfg);
                let flavor = if *lm {
                    BatchFlavor::Levenberg(LevenbergMarquardtSettings::default())
                } else {
                    BatchFlavor::GaussNewton(GaussNewtonSettings::default())
                };
                server.create_batch_session(graph, flavor)
            }
            SessionSpec::Incremental { seed } => server.create_incremental_session(*seed),
        })
        .collect()
}

/// Builds the plan's roster as bare [`Session`]s (no server) — the
/// sequential oracle and the naive baseline share session construction
/// with the served path byte for byte.
///
/// # Errors
/// Propagates incremental-anchor solve errors.
pub fn build_sessions(plan: &TrafficPlan) -> Result<Vec<Session>, ServerError> {
    plan.sessions
        .iter()
        .enumerate()
        .map(|(i, spec)| match spec {
            SessionSpec::Batch { cfg, lm } => {
                let graph = generate(cfg);
                let flavor = if *lm {
                    BatchFlavor::Levenberg(LevenbergMarquardtSettings::default())
                } else {
                    BatchFlavor::GaussNewton(GaussNewtonSettings::default())
                };
                Session::batch(SessionId(i as u64), graph, flavor)
            }
            SessionSpec::Incremental { seed } => Session::incremental(SessionId(i as u64), *seed),
        })
        .collect()
}

/// What one traffic replay produced: per-client, per-op outcomes plus
/// exact client-side latency samples.
#[derive(Debug)]
pub struct LoadReport {
    /// Wall-clock of the whole replay, nanoseconds.
    pub wall_ns: u64,
    /// Outcome of every op, indexed `[client][op]` in script order.
    pub outcomes: Vec<Vec<Result<SolveOutcome, ServerError>>>,
    /// Exact per-request latencies, sorted ascending, nanoseconds.
    pub latencies_ns: Vec<u64>,
}

impl LoadReport {
    /// Requests replayed.
    pub fn requests(&self) -> usize {
        self.outcomes.iter().map(Vec::len).sum()
    }

    /// Requests that returned an error.
    pub fn errors(&self) -> usize {
        self.outcomes
            .iter()
            .flatten()
            .filter(|o| o.is_err())
            .count()
    }

    /// Completed requests per second of wall-clock.
    pub fn throughput_rps(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.requests() as f64 * 1e9 / self.wall_ns as f64
    }

    /// Exact latency percentile (nearest-rank) from the client-side
    /// samples; 0 when empty.
    pub fn percentile_ns(&self, q: f64) -> u64 {
        if self.latencies_ns.is_empty() {
            return 0;
        }
        let n = self.latencies_ns.len();
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as usize).clamp(1, n);
        self.latencies_ns[rank - 1]
    }
}

fn collect_report(
    started: Instant,
    outcomes: Vec<Vec<Result<SolveOutcome, ServerError>>>,
    mut latencies: Vec<u64>,
) -> LoadReport {
    let wall_ns = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
    latencies.sort_unstable();
    LoadReport {
        wall_ns,
        outcomes,
        latencies_ns: latencies,
    }
}

/// Drives the plan against a running server: one closed-loop thread per
/// client, `Overloaded` retried with backoff (backpressure, not failure).
/// Sessions must already be installed in roster order.
pub fn run_load(server: &SolverServer, plan: &TrafficPlan) -> LoadReport {
    let started = Instant::now();
    let mut outcomes: Vec<Vec<Result<SolveOutcome, ServerError>>> = Vec::new();
    let mut latencies: Vec<u64> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = plan
            .scripts
            .iter()
            .map(|script| {
                scope.spawn(move || {
                    let mut out = Vec::with_capacity(script.len());
                    let mut lats = Vec::with_capacity(script.len());
                    for op in script {
                        let request = match *op {
                            OpSpec::Solve { session, perturb } => Request::Solve {
                                session: SessionId(session as u64),
                                perturb: Some(perturb),
                            },
                            OpSpec::Extend { session, steps } => Request::Extend {
                                session: SessionId(session as u64),
                                steps,
                            },
                        };
                        let t0 = Instant::now();
                        let res = loop {
                            match server.solve_blocking(request) {
                                Err(ServerError::Overloaded { .. }) => {
                                    std::thread::yield_now();
                                }
                                other => break other,
                            }
                        };
                        lats.push(t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
                        out.push(res);
                    }
                    (out, lats)
                })
            })
            .collect();
        for h in handles {
            let (out, lats) = h.join().expect("load client");
            outcomes.push(out);
            latencies.extend(lats);
        }
    });
    collect_report(started, outcomes, latencies)
}

/// The naive per-request baseline: the same traffic and the same client
/// concurrency, but every solve rebuilds the whole tenant session from
/// scratch — graph, warm operating point, symbolic plan, workspace — as
/// a stateless cache-less service would. No shared cache, no workspace
/// pools, no coalescing. GN results are bitwise-identical to the served
/// path (both run the same session code), making throughput ratios an
/// equal-accuracy comparison.
///
/// # Errors
/// Propagates session-construction errors.
pub fn run_naive_load(plan: &TrafficPlan) -> Result<LoadReport, ServerError> {
    let sessions = build_sessions(plan)?;
    let started = Instant::now();
    let mut outcomes: Vec<Vec<Result<SolveOutcome, ServerError>>> = Vec::new();
    let mut latencies: Vec<u64> = Vec::new();
    std::thread::scope(|scope| {
        let sessions = &sessions;
        let handles: Vec<_> = plan
            .scripts
            .iter()
            .map(|script| {
                scope.spawn(move || {
                    let mut out = Vec::with_capacity(script.len());
                    let mut lats = Vec::with_capacity(script.len());
                    for op in script {
                        let t0 = Instant::now();
                        let res = match *op {
                            OpSpec::Solve { session, perturb } => {
                                naive_solve(&plan.sessions[session], session, perturb)
                            }
                            OpSpec::Extend { session, steps } => sessions[session].extend(steps),
                        };
                        lats.push(t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
                        out.push(res);
                    }
                    (out, lats)
                })
            })
            .collect();
        for h in handles {
            let (out, lats) = h.join().expect("naive client");
            outcomes.push(out);
            latencies.extend(lats);
        }
    });
    Ok(collect_report(started, outcomes, latencies))
}

/// One naive request: rebuild the tenant's session from scratch —
/// regenerate the graph, re-converge the warm operating point, rebuild
/// the symbolic plan, allocate a fresh workspace — then run the exact
/// same per-request solve the server runs. This is what a stateless,
/// cache-less service pays per request for state the server holds warm,
/// and because both paths execute identical session code the outcomes
/// are bitwise-equal (the equal-accuracy half of the speedup claim).
fn naive_solve(
    spec: &SessionSpec,
    roster_index: usize,
    perturb: Perturb,
) -> Result<SolveOutcome, ServerError> {
    let SessionSpec::Batch { cfg, lm } = spec else {
        return Err(ServerError::WrongFlavor {
            session: SessionId(roster_index as u64),
            requested: "naive batch solve",
        });
    };
    if *lm {
        // LM is unbatched on the server too; reuse the session path.
        let session = Session::batch(
            SessionId(roster_index as u64),
            generate(cfg),
            BatchFlavor::Levenberg(LevenbergMarquardtSettings::default()),
        )?;
        return session.solve_direct(Some(perturb));
    }
    let session = Session::batch(
        SessionId(roster_index as u64),
        generate(cfg),
        BatchFlavor::GaussNewton(GaussNewtonSettings::default()),
    )?;
    let plan = session.build_plan()?;
    let mut ws = plan.workspace();
    session.solve_with_plan(&plan, &mut ws, Some(perturb))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;

    fn small_spec() -> LoadSpec {
        LoadSpec {
            clients: 3,
            batch_sessions: 6,
            topologies: 2,
            incremental_sessions: 2,
            ops_per_client: 8,
            variables: 6,
            ..LoadSpec::default()
        }
    }

    #[test]
    fn planning_is_deterministic() {
        let spec = small_spec();
        let a = plan_traffic(&spec);
        let b = plan_traffic(&spec);
        assert_eq!(a.sessions.len(), b.sessions.len());
        assert_eq!(a.total_ops(), b.total_ops());
        for (sa, sb) in a.scripts.iter().zip(&b.scripts) {
            for (oa, ob) in sa.iter().zip(sb) {
                match (oa, ob) {
                    (
                        OpSpec::Solve {
                            session: s1,
                            perturb: p1,
                        },
                        OpSpec::Solve {
                            session: s2,
                            perturb: p2,
                        },
                    ) => {
                        assert_eq!(s1, s2);
                        assert_eq!(p1, p2);
                    }
                    (
                        OpSpec::Extend {
                            session: s1,
                            steps: k1,
                        },
                        OpSpec::Extend {
                            session: s2,
                            steps: k2,
                        },
                    ) => {
                        assert_eq!(s1, s2);
                        assert_eq!(k1, k2);
                    }
                    _ => panic!("op kinds diverge"),
                }
            }
        }
    }

    #[test]
    fn incremental_sessions_have_exactly_one_owner() {
        let plan = plan_traffic(&small_spec());
        let incr: Vec<usize> = plan
            .sessions
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, SessionSpec::Incremental { .. }))
            .map(|(i, _)| i)
            .collect();
        for &s in &incr {
            let owners: Vec<usize> = plan
                .scripts
                .iter()
                .enumerate()
                .filter(|(_, script)| {
                    script
                        .iter()
                        .any(|op| matches!(op, OpSpec::Extend { session, .. } if *session == s))
                })
                .map(|(c, _)| c)
                .collect();
            assert!(owners.len() <= 1, "incremental session {s} has {owners:?}");
        }
    }

    #[test]
    fn topology_pool_actually_collides() {
        let plan = plan_traffic(&small_spec());
        let mut fps = std::collections::HashMap::new();
        for s in &plan.sessions {
            if let SessionSpec::Batch { cfg, .. } = s {
                *fps.entry(generate(cfg).structure_fingerprint())
                    .or_insert(0) += 1;
            }
        }
        assert!(fps.len() <= 2, "2 topologies configured, got {}", fps.len());
        assert!(fps.values().any(|&n| n >= 2), "fingerprints must collide");
    }

    #[test]
    fn served_load_runs_clean_on_a_small_spec() {
        let spec = small_spec();
        let plan = plan_traffic(&spec);
        let server = SolverServer::new(ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        });
        install_sessions(&server, &plan).unwrap();
        let report = run_load(&server, &plan);
        assert_eq!(report.requests(), plan.total_ops());
        assert_eq!(report.errors(), 0);
        assert!(report.throughput_rps() > 0.0);
        assert!(report.percentile_ns(0.5) <= report.percentile_ns(0.99));
        server.shutdown();
        let m = server.metrics();
        assert_eq!(m.completed as usize, plan.total_ops());
    }
}
