//! Bounded MPMC request queue — the heart of the lightweight runtime.
//!
//! Built directly on `std::sync` primitives in the spirit of
//! `orianna_math::par`: a mutex-guarded ring (`VecDeque`) plus one
//! condvar for consumers. Producers never block — a full queue returns
//! the item to the caller immediately so the server can surface
//! structured backpressure ([`crate::ServerError::Overloaded`]) instead
//! of stalling robots mid-control-loop. Consumers block until an item
//! arrives or the queue closes, and a closed queue still drains: workers
//! finish everything accepted before shutdown, so accepted requests are
//! never dropped silently.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused. Carries the item back so nothing is lost.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue was at capacity.
    Full(T),
    /// The queue has been closed by shutdown.
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer/multi-consumer FIFO with batch draining.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock").items.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues `item`, or returns it when the queue is full or closed.
    /// Never blocks.
    pub fn push(&self, item: T) -> Result<(), PushError<T>> {
        let mut st = self.state.lock().expect("queue lock");
        if st.closed {
            return Err(PushError::Closed(item));
        }
        if st.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        st.items.push_back(item);
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, blocking while the queue is open and
    /// empty. Returns `None` only when the queue is closed **and**
    /// drained — the worker-loop exit condition.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.state.lock().expect("queue lock");
        loop {
            if let Some(item) = st.items.pop_front() {
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).expect("queue wait");
        }
    }

    /// Removes up to `max` queued items matching `pred`, front to back,
    /// without blocking. This is the batching hook: a worker that popped a
    /// request coalesces every same-topology request already waiting into
    /// one plan execution. Non-matching items keep their relative order.
    pub fn drain_matching(&self, max: usize, mut pred: impl FnMut(&T) -> bool) -> Vec<T> {
        let mut out = Vec::new();
        if max == 0 {
            return out;
        }
        let mut st = self.state.lock().expect("queue lock");
        let mut i = 0;
        while i < st.items.len() && out.len() < max {
            if pred(&st.items[i]) {
                // `remove` preserves the order of the remaining items.
                out.push(st.items.remove(i).expect("index in bounds"));
            } else {
                i += 1;
            }
        }
        out
    }

    /// Closes the queue: future pushes fail with [`PushError::Closed`],
    /// and blocked consumers wake to drain the remainder and observe the
    /// close.
    pub fn close(&self) {
        let mut st = self.state.lock().expect("queue lock");
        st.closed = true;
        drop(st);
        self.not_empty.notify_all();
    }

    /// Whether [`BoundedQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("queue lock").closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_returns_item() {
        let q = BoundedQueue::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        match q.push(3) {
            Err(PushError::Full(item)) => assert_eq!(item, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn closed_queue_rejects_pushes_but_drains() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.close();
        match q.push(2) {
            Err(PushError::Closed(item)) => assert_eq!(item, 2),
            other => panic!("expected Closed, got {other:?}"),
        }
        assert_eq!(q.pop(), Some(1), "accepted items drain after close");
        assert_eq!(q.pop(), None, "then consumers observe the close");
    }

    #[test]
    fn capacity_clamps_to_one() {
        let q = BoundedQueue::<u32>::new(0);
        assert_eq!(q.capacity(), 1);
        q.push(7).unwrap();
        assert!(matches!(q.push(8), Err(PushError::Full(8))));
    }

    #[test]
    fn drain_matching_preserves_order_and_bound() {
        let q = BoundedQueue::new(16);
        for i in 0..10 {
            q.push(i).unwrap();
        }
        let evens = q.drain_matching(3, |x| x % 2 == 0);
        assert_eq!(evens, vec![0, 2, 4], "bounded, front-to-back");
        let rest: Vec<_> = std::iter::from_fn(|| {
            let mut st = q.state.lock().unwrap();
            st.items.pop_front()
        })
        .collect();
        assert_eq!(rest, vec![1, 3, 5, 6, 7, 8, 9], "others keep order");
    }

    #[test]
    fn blocked_pop_wakes_on_close() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert_eq!(h.join().unwrap(), None);
    }

    #[test]
    fn concurrent_producers_consumers_lose_nothing() {
        let q = Arc::new(BoundedQueue::new(1024));
        let mut producers = Vec::new();
        for p in 0..4u64 {
            let q = Arc::clone(&q);
            producers.push(std::thread::spawn(move || {
                for i in 0..100u64 {
                    let mut item = p * 1000 + i;
                    loop {
                        match q.push(item) {
                            Ok(()) => break,
                            Err(PushError::Full(back)) => {
                                item = back;
                                std::thread::yield_now();
                            }
                            Err(PushError::Closed(_)) => panic!("closed early"),
                        }
                    }
                }
            }));
        }
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let q = Arc::clone(&q);
            consumers.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(item) = q.pop() {
                    got.push(item);
                }
                got
            }));
        }
        for h in producers {
            h.join().unwrap();
        }
        q.close();
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut expect: Vec<u64> = (0..4u64)
            .flat_map(|p| (0..100u64).map(move |i| p * 1000 + i))
            .collect();
        expect.sort_unstable();
        assert_eq!(all, expect);
    }
}
