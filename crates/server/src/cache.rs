//! Sharded topology-fingerprint → [`SolvePlan`] cache with per-shard
//! workspace pools.
//!
//! One global plan cache behind one mutex would serialize every request's
//! symbolic lookup; sharding by fingerprint spreads unrelated topologies
//! across independent locks so fleet traffic only contends when it
//! *shares* a topology — exactly the case batching wants to detect
//! anyway. Each shard is a [`PlanCache`] (plans + bounded workspace
//! pools), so the single-tenant and multi-tenant paths share one
//! implementation and one set of invariants:
//!
//! * a parked workspace is **moved** to exactly one checkout — double
//!   checkout is impossible (verified by id in the stress suite);
//! * every checkout is either a pool reuse or a counted fresh build, and
//!   every park either returns the arena or counts an eviction, so
//!   `builds == parked + evictions + outstanding` at every quiescent
//!   point;
//! * shard choice depends only on the fingerprint, never on thread
//!   identity, so results are shard-count-independent.

use crate::metrics::CacheStats;
use orianna_solver::{PlanCache, SolveError, SolvePlan, Workspace};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A fingerprint-sharded plan + workspace-pool cache.
#[derive(Debug)]
pub struct ShardedPlanCache {
    shards: Vec<Mutex<PlanCache>>,
    invalidations: AtomicU64,
}

impl ShardedPlanCache {
    /// Creates a cache with `shards` independent shards (clamped to ≥ 1),
    /// each parking at most `pool_cap` workspaces per topology.
    pub fn new(shards: usize, pool_cap: usize) -> Self {
        let shards = shards.max(1);
        Self {
            shards: (0..shards)
                .map(|_| {
                    let mut c = PlanCache::new();
                    c.set_workspace_cap(pool_cap);
                    Mutex::new(c)
                })
                .collect(),
            invalidations: AtomicU64::new(0),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, fingerprint: u64) -> &Mutex<PlanCache> {
        // Fingerprints are already avalanched hashes; simple modulo
        // spreads them evenly.
        &self.shards[(fingerprint % self.shards.len() as u64) as usize]
    }

    /// Returns the plan for `(fingerprint, tag)`, building and caching it
    /// on first use.
    ///
    /// # Errors
    /// Propagates plan-construction errors; nothing is cached on failure.
    pub fn plan(
        &self,
        fingerprint: u64,
        tag: u8,
        build: impl FnOnce() -> Result<SolvePlan, SolveError>,
    ) -> Result<Arc<SolvePlan>, SolveError> {
        self.shard(fingerprint)
            .lock()
            .expect("cache shard lock")
            .get_or_build(fingerprint, tag, build)
    }

    /// Checks out the plan plus `count` exclusive workspaces for one
    /// batch execution — a single lock acquisition on the owning shard.
    /// Parked arenas are reused first; the remainder is freshly
    /// allocated (counted per workspace).
    ///
    /// # Errors
    /// Propagates plan-construction errors.
    pub fn checkout(
        &self,
        fingerprint: u64,
        tag: u8,
        count: usize,
        build: impl FnOnce() -> Result<SolvePlan, SolveError>,
    ) -> Result<(Arc<SolvePlan>, Vec<Workspace>), SolveError> {
        let mut shard = self.shard(fingerprint).lock().expect("cache shard lock");
        let plan = shard.get_or_build(fingerprint, tag, build)?;
        let workspaces = (0..count)
            .map(|_| shard.checkout_workspace(&plan, tag))
            .collect();
        Ok((plan, workspaces))
    }

    /// Parks workspaces back for reuse. Pool overflow beyond the per-key
    /// cap drops arenas (counted as evictions).
    pub fn park(&self, fingerprint: u64, tag: u8, workspaces: impl IntoIterator<Item = Workspace>) {
        let mut shard = self.shard(fingerprint).lock().expect("cache shard lock");
        for ws in workspaces {
            shard.store_workspace(fingerprint, tag, ws);
        }
    }

    /// Drops the plan and parked workspaces of `(fingerprint, tag)`.
    /// Returns whether a plan was cached. Outstanding checkouts are
    /// unaffected; parking them back repopulates the pool.
    pub fn invalidate(&self, fingerprint: u64, tag: u8) -> bool {
        let dropped = self
            .shard(fingerprint)
            .lock()
            .expect("cache shard lock")
            .invalidate(fingerprint, tag);
        if dropped {
            self.invalidations.fetch_add(1, Ordering::Relaxed);
        }
        dropped
    }

    /// Plans currently cached across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard lock").len())
            .sum()
    }

    /// True when no shard holds a plan.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Workspaces currently parked across all shards.
    pub fn parked_workspaces(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard lock").parked_workspaces())
            .sum()
    }

    /// Counter totals across every shard.
    pub fn stats(&self) -> CacheStats {
        let mut t = CacheStats {
            invalidations: self.invalidations.load(Ordering::Relaxed),
            ..CacheStats::default()
        };
        for s in &self.shards {
            let s = s.lock().expect("cache shard lock");
            t.plan_hits += s.hits() as u64;
            t.plan_misses += s.misses() as u64;
            t.workspace_reuses += s.workspace_reuses() as u64;
            t.workspace_builds += s.workspace_builds() as u64;
            t.workspace_evictions += s.workspace_evictions() as u64;
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use orianna_graph::{natural_ordering, BetweenFactor, FactorGraph, PriorFactor};
    use orianna_lie::Pose2;

    fn chain(n: usize) -> FactorGraph {
        let mut g = FactorGraph::new();
        let ids: Vec<_> = (0..n)
            .map(|i| g.add_pose2(Pose2::new(0.0, i as f64, 0.0)))
            .collect();
        g.add_factor(PriorFactor::pose2(ids[0], Pose2::identity(), 0.1));
        for w in ids.windows(2) {
            g.add_factor(BetweenFactor::pose2(
                w[0],
                w[1],
                Pose2::new(0.0, 1.0, 0.0),
                0.2,
            ));
        }
        g
    }

    fn build_for(g: &FactorGraph) -> impl FnOnce() -> Result<SolvePlan, SolveError> + '_ {
        move || SolvePlan::for_graph(g, natural_ordering(g).as_slice())
    }

    #[test]
    fn checkout_returns_plan_and_exclusive_workspaces() {
        let g = chain(5);
        let fp = g.structure_fingerprint();
        let cache = ShardedPlanCache::new(4, 8);
        let (plan, wss) = cache.checkout(fp, 0, 3, build_for(&g)).unwrap();
        assert_eq!(plan.fingerprint(), fp);
        assert_eq!(wss.len(), 3);
        let mut ids: Vec<u64> = wss.iter().map(|w| w.id()).collect();
        ids.dedup();
        assert_eq!(ids.len(), 3, "every workspace is a distinct allocation");
        let s = cache.stats();
        assert_eq!(s.plan_misses, 1);
        assert_eq!(s.workspace_builds, 3);

        cache.park(fp, 0, wss);
        let (_, wss2) = cache.checkout(fp, 0, 3, build_for(&g)).unwrap();
        let s = cache.stats();
        assert_eq!(s.plan_hits, 1);
        assert_eq!(s.workspace_reuses, 3);
        assert_eq!(s.workspace_builds, 3, "no fresh builds on reuse");
        drop(wss2);
    }

    #[test]
    fn shard_choice_is_fingerprint_stable() {
        let g = chain(4);
        let fp = g.structure_fingerprint();
        for shards in [1usize, 2, 7, 16] {
            let cache = ShardedPlanCache::new(shards, 4);
            let p1 = cache.plan(fp, 0, build_for(&g)).unwrap();
            let p2 = cache.plan(fp, 0, build_for(&g)).unwrap();
            assert!(Arc::ptr_eq(&p1, &p2), "shards={shards}");
            assert_eq!(cache.stats().plan_misses, 1, "shards={shards}");
        }
    }

    #[test]
    fn invalidate_drops_plan_and_pool() {
        let g = chain(5);
        let fp = g.structure_fingerprint();
        let cache = ShardedPlanCache::new(2, 4);
        let (_, wss) = cache.checkout(fp, 0, 2, build_for(&g)).unwrap();
        cache.park(fp, 0, wss);
        assert_eq!(cache.parked_workspaces(), 2);
        assert!(cache.invalidate(fp, 0));
        assert!(!cache.invalidate(fp, 0));
        assert_eq!(cache.parked_workspaces(), 0);
        assert!(cache.is_empty());
        let s = cache.stats();
        assert_eq!(s.invalidations, 1);
        assert_eq!(s.workspace_evictions, 2);
        // The cache still serves after invalidation: a rebuild is a miss.
        let _ = cache.checkout(fp, 0, 1, build_for(&g)).unwrap();
        assert_eq!(cache.stats().plan_misses, 2);
    }

    #[test]
    fn pool_cap_evicts_on_park() {
        let g = chain(4);
        let fp = g.structure_fingerprint();
        let cache = ShardedPlanCache::new(1, 2);
        let (_, wss) = cache.checkout(fp, 0, 5, build_for(&g)).unwrap();
        cache.park(fp, 0, wss);
        assert_eq!(cache.parked_workspaces(), 2, "cap bounds the pool");
        assert_eq!(cache.stats().workspace_evictions, 3);
    }
}
