//! # orianna-server
//!
//! Fleet-scale solver serving: long-lived multi-tenant sessions, a
//! sharded topology-fingerprint → plan cache with per-shard workspace
//! pools, and request batching that coalesces same-topology solves
//! through one shared symbolic plan.
//!
//! ## Shape of the system
//!
//! ```text
//!  clients ──submit──▶ BoundedQueue ──pop/coalesce──▶ workers
//!                         (backpressure:               │
//!                          Overloaded)                 ▼
//!                                        ShardedPlanCache
//!                                        (plan + workspace checkout)
//!                                                      │
//!                                        scoped_workers fan-out
//!                                        (serial solve per session)
//! ```
//!
//! * [`Session`] — one tenant's solver state: batch Gauss-Newton
//!   (plan-backed, batchable), batch Levenberg-Marquardt (unbatched), or
//!   incremental Bayes-tree (closed-loop, single-owner).
//! * [`ShardedPlanCache`] — plans and bounded workspace pools sharded by
//!   topology fingerprint; checkout/park moves arenas exclusively, so
//!   double checkout is impossible by construction.
//! * [`SolverServer`] — the runtime: bounded MPMC queue, worker threads,
//!   same-topology coalescing, graceful shutdown that drains every
//!   accepted request.
//! * [`load`] / [`oracle`] — a seeded synthetic fleet-traffic generator
//!   and a sequential replayer; `crates/verify` pins the determinism
//!   contract (served ≡ sequential, bitwise) with a property test.
//!
//! ## Determinism contract
//!
//! Every per-request solve runs serially on exclusively owned state (the
//! session's graph plus a checked-out workspace); parallelism exists only
//! *across* requests. Batch solves reset values from the request's seeded
//! perturbation, making them order-independent; incremental sessions are
//! driven closed-loop by one owner. Consequently a server run is
//! bitwise-identical to a sequential replay at any combination of worker
//! count, shard count, batch size, and `ORIANNA_THREADS`.

#![warn(missing_docs)]

mod cache;
mod error;
pub mod load;
mod metrics;
pub mod oracle;
mod queue;
mod server;
mod session;

pub use cache::ShardedPlanCache;
pub use error::ServerError;
pub use load::{
    build_sessions, install_sessions, plan_traffic, run_load, run_naive_load, LoadReport, LoadSpec,
    OpSpec, SessionSpec, TrafficPlan,
};
pub use metrics::{CacheStats, LatencyHistogram, LatencySnapshot, Metrics, MetricsSnapshot};
pub use queue::{BoundedQueue, PushError};
pub use server::{Request, ServerConfig, SolverServer, Ticket};
pub use session::{
    perturb_delta, server_gn_settings, server_lm_settings, splitmix64, values_digest, BatchFlavor,
    Perturb, Session, SessionId, SolveOutcome,
};
