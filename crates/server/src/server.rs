//! The fleet-scale solver server: a lightweight worker-pool runtime
//! that serves many tenant sessions through one sharded plan cache.
//!
//! ## Architecture
//!
//! Requests enter through a bounded MPMC queue ([`BoundedQueue`]) — a
//! full queue is structured backpressure ([`ServerError::Overloaded`]),
//! never a stall or a silent drop. Worker threads pop a request and, for
//! plan-backed (Gauss-Newton) sessions, coalesce every same-topology
//! request already waiting into one batch: a single shard-lock
//! acquisition checks out the shared [`SolvePlan`](orianna_solver::SolvePlan)
//! plus one pooled workspace per request, the batch fans out across the
//! `math::par` worker pool, each request runs the *serial* arena solve on
//! its own session state, and the workspaces are parked back for reuse.
//!
//! ## Determinism
//!
//! Every per-request solve is serial and a pure function of the owning
//! session's state (plus the request's perturbation), and workspaces are
//! exclusively owned for the duration of a solve — so outcomes are
//! bitwise-identical to a sequential replay of the same traffic at any
//! worker count, shard count, batch size, or `ORIANNA_THREADS` setting.
//! `crates/verify` pins this with a property test against the
//! [`crate::oracle`] sequential replayer.

use crate::cache::ShardedPlanCache;
use crate::error::ServerError;
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::queue::{BoundedQueue, PushError};
use crate::session::{BatchFlavor, Perturb, Session, SessionId, SolveOutcome};
use orianna_graph::FactorGraph;
use orianna_math::Parallelism;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads draining the request queue.
    pub workers: usize,
    /// Bounded request-queue capacity; submissions beyond it are refused
    /// with [`ServerError::Overloaded`].
    pub queue_capacity: usize,
    /// Largest number of same-topology requests coalesced into one plan
    /// execution (1 disables batching).
    pub max_batch: usize,
    /// Plan-cache shards.
    pub shards: usize,
    /// Parked workspaces kept per (topology, ordering) key in each shard.
    pub workspace_pool_cap: usize,
    /// Parallelism for fanning a batch out across sessions. Per-request
    /// solves stay serial regardless — this only widens *across* requests,
    /// so it never affects results.
    pub fanout: Parallelism,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism()
                .map(|n| n.get().min(4))
                .unwrap_or(1),
            queue_capacity: 1024,
            max_batch: 16,
            shards: 8,
            workspace_pool_cap: 32,
            fanout: Parallelism::default(),
        }
    }
}

/// A request against an existing session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// Solve a batch session, optionally resetting its values to a
    /// seeded perturbation of the initial estimate first.
    Solve {
        /// Target session.
        session: SessionId,
        /// Optional deterministic reset-and-perturb.
        perturb: Option<Perturb>,
    },
    /// Extend an incremental session by seeded odometry steps.
    Extend {
        /// Target session.
        session: SessionId,
        /// Poses to append (one Bayes-tree update each).
        steps: usize,
    },
}

impl Request {
    /// The session this request addresses.
    pub fn session(&self) -> SessionId {
        match self {
            Request::Solve { session, .. } | Request::Extend { session, .. } => *session,
        }
    }
}

struct TicketInner {
    slot: Mutex<Option<Result<SolveOutcome, ServerError>>>,
    done: Condvar,
}

/// A handle resolving to one request's outcome. Every accepted request
/// fulfills its ticket exactly once — including during shutdown, when
/// workers drain the queue before exiting.
pub struct Ticket(Arc<TicketInner>);

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket")
            .field("ready", &self.is_ready())
            .finish()
    }
}

impl Ticket {
    fn new() -> (Self, Arc<TicketInner>) {
        let inner = Arc::new(TicketInner {
            slot: Mutex::new(None),
            done: Condvar::new(),
        });
        (Self(Arc::clone(&inner)), inner)
    }

    /// Blocks until the request completes and returns its outcome.
    pub fn wait(self) -> Result<SolveOutcome, ServerError> {
        let mut slot = self.0.slot.lock().expect("ticket lock");
        loop {
            if let Some(out) = slot.take() {
                return out;
            }
            slot = self.0.done.wait(slot).expect("ticket wait");
        }
    }

    /// Waits up to `timeout`; `None` when the request is still in flight.
    pub fn wait_timeout(self, timeout: Duration) -> Option<Result<SolveOutcome, ServerError>> {
        let deadline = Instant::now() + timeout;
        let mut slot = self.0.slot.lock().expect("ticket lock");
        loop {
            if let Some(out) = slot.take() {
                return Some(out);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .0
                .done
                .wait_timeout(slot, deadline - now)
                .expect("ticket wait");
            slot = guard;
        }
    }

    /// True once the outcome is available (non-blocking).
    pub fn is_ready(&self) -> bool {
        self.0.slot.lock().expect("ticket lock").is_some()
    }
}

enum Work {
    /// Gauss-Newton solve through the sharded plan cache (batchable).
    Planned {
        session: Arc<Session>,
        perturb: Option<Perturb>,
    },
    /// Unbatched solve on the session's own path (LM; also the
    /// structured wrong-flavor surface for incremental sessions).
    Direct {
        session: Arc<Session>,
        perturb: Option<Perturb>,
    },
    /// Incremental Bayes-tree extension.
    Extend { session: Arc<Session>, steps: usize },
}

struct QueuedRequest {
    work: Work,
    ticket: Arc<TicketInner>,
    submitted: Instant,
}

struct Shared {
    config: ServerConfig,
    queue: BoundedQueue<QueuedRequest>,
    sessions: RwLock<Vec<Arc<Session>>>,
    cache: ShardedPlanCache,
    metrics: Metrics,
}

/// The multi-tenant solver server.
pub struct SolverServer {
    shared: Arc<Shared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl SolverServer {
    /// Starts a server with `config.workers` worker threads.
    pub fn new(config: ServerConfig) -> Self {
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_capacity),
            sessions: RwLock::new(Vec::new()),
            cache: ShardedPlanCache::new(config.shards, config.workspace_pool_cap),
            metrics: Metrics::default(),
            config,
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("orianna-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn server worker")
            })
            .collect();
        Self {
            shared,
            handles: Mutex::new(handles),
        }
    }

    /// Registers a long-lived batch session (converging its estimate as
    /// the session warm-up) and returns its id.
    ///
    /// # Errors
    /// Propagates the warm-up's solve error.
    pub fn create_batch_session(
        &self,
        graph: FactorGraph,
        flavor: BatchFlavor,
    ) -> Result<SessionId, ServerError> {
        self.install(|id| Session::batch(id, graph, flavor))
    }

    /// Registers an incremental (Bayes-tree) session seeded at `seed`.
    ///
    /// # Errors
    /// Propagates the anchor update's solve error.
    pub fn create_incremental_session(&self, seed: u64) -> Result<SessionId, ServerError> {
        self.install(|id| Session::incremental(id, seed))
    }

    fn install(
        &self,
        make: impl FnOnce(SessionId) -> Result<Session, ServerError>,
    ) -> Result<SessionId, ServerError> {
        let mut sessions = self.shared.sessions.write().expect("session registry");
        let id = SessionId(sessions.len() as u64);
        sessions.push(Arc::new(make(id)?));
        Ok(id)
    }

    /// Looks up a session handle.
    ///
    /// # Errors
    /// [`ServerError::UnknownSession`] when `id` was never created here.
    pub fn session(&self, id: SessionId) -> Result<Arc<Session>, ServerError> {
        self.shared
            .sessions
            .read()
            .expect("session registry")
            .get(id.0 as usize)
            .cloned()
            .ok_or(ServerError::UnknownSession(id))
    }

    /// Sessions registered so far.
    pub fn num_sessions(&self) -> usize {
        self.shared.sessions.read().expect("session registry").len()
    }

    /// Submits a request. Non-blocking: returns a [`Ticket`] on
    /// acceptance.
    ///
    /// # Errors
    /// [`ServerError::UnknownSession`] for an unregistered session,
    /// [`ServerError::Overloaded`] when the queue is full (backpressure —
    /// retry later), [`ServerError::ShuttingDown`] after shutdown began.
    pub fn submit(&self, request: Request) -> Result<Ticket, ServerError> {
        let session = self.session(request.session())?;
        let work = match request {
            Request::Solve { perturb, .. } => {
                if session.fingerprint().is_some() {
                    Work::Planned { session, perturb }
                } else {
                    Work::Direct { session, perturb }
                }
            }
            Request::Extend { steps, .. } => Work::Extend { session, steps },
        };
        let (ticket, inner) = Ticket::new();
        let queued = QueuedRequest {
            work,
            ticket: inner,
            submitted: Instant::now(),
        };
        match self.shared.queue.push(queued) {
            Ok(()) => {
                self.shared.metrics.accepted.fetch_add(1, Ordering::Relaxed);
                Ok(ticket)
            }
            Err(PushError::Full(_)) => {
                self.shared
                    .metrics
                    .rejected_overload
                    .fetch_add(1, Ordering::Relaxed);
                Err(ServerError::Overloaded {
                    capacity: self.shared.queue.capacity(),
                })
            }
            Err(PushError::Closed(_)) => Err(ServerError::ShuttingDown),
        }
    }

    /// Submits and waits — the convenience path for closed-loop clients.
    ///
    /// # Errors
    /// As [`SolverServer::submit`], plus any error the solve produced.
    pub fn solve_blocking(&self, request: Request) -> Result<SolveOutcome, ServerError> {
        self.submit(request)?.wait()
    }

    /// Drops the cached plan (and parked workspaces) of a topology, e.g.
    /// after a fleet-wide model update. Returns whether a plan was cached.
    pub fn invalidate_topology(&self, fingerprint: u64, tag: u8) -> bool {
        self.shared.cache.invalidate(fingerprint, tag)
    }

    /// Point-in-time counters: throughput, batching, cache, latency.
    pub fn metrics(&self) -> MetricsSnapshot {
        MetricsSnapshot::capture(&self.shared.metrics, self.shared.cache.stats())
    }

    /// Requests currently queued (waiting for a worker).
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// Graceful shutdown: stop accepting, drain every accepted request,
    /// join the workers. Idempotent.
    pub fn shutdown(&self) {
        self.shared.queue.close();
        let handles = std::mem::take(&mut *self.handles.lock().expect("worker handles"));
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for SolverServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for SolverServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolverServer")
            .field("sessions", &self.num_sessions())
            .field("queue_depth", &self.queue_depth())
            .finish_non_exhaustive()
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(first) = shared.queue.pop() {
        match &first.work {
            Work::Planned { session, .. } => {
                let fp = session
                    .fingerprint()
                    .expect("planned work has a fingerprint");
                let tag = session.tag();
                let mut batch = vec![first];
                if shared.config.max_batch > 1 {
                    batch.extend(
                        shared
                            .queue
                            .drain_matching(shared.config.max_batch - 1, |r| {
                                matches!(&r.work, Work::Planned { session: s, .. }
                                if s.fingerprint() == Some(fp) && s.tag() == tag)
                            }),
                    );
                }
                execute_planned(shared, fp, tag, batch);
            }
            _ => execute_single(shared, first),
        }
    }
}

/// Runs one coalesced batch: checkout plan + one workspace per request
/// under a single shard lock, fan out, park everything back.
fn execute_planned(shared: &Shared, fp: u64, tag: u8, batch: Vec<QueuedRequest>) {
    let k = batch.len();
    shared.metrics.record_batch(k as u64);

    let build_session = match &batch[0].work {
        Work::Planned { session, .. } => Arc::clone(session),
        _ => unreachable!("planned batches only coalesce planned work"),
    };
    let (plan, workspaces) = match shared
        .cache
        .checkout(fp, tag, k, || build_session.build_plan())
    {
        Ok(out) => out,
        Err(e) => {
            // Plan construction failed (e.g. an unconstrained variable):
            // every rider gets the structured error; nothing is cached.
            for req in batch {
                fulfill(shared, req, Err(ServerError::Solve(e.clone())));
            }
            return;
        }
    };

    let ws_slots: Vec<Mutex<orianna_solver::Workspace>> =
        workspaces.into_iter().map(Mutex::new).collect();
    let outcomes: Vec<Mutex<Option<Result<SolveOutcome, ServerError>>>> =
        (0..k).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    // Fan-out width is gated on the batch's total estimated work; the
    // per-request solves inside are serial, so the gate only affects
    // wall-clock, never results.
    let par = shared
        .config
        .fanout
        .gate(plan.estimated_flops().saturating_mul(k as u64));
    orianna_math::par::scoped_workers(&par, k, |_| loop {
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        if i >= k {
            break;
        }
        let Work::Planned { session, perturb } = &batch[i].work else {
            unreachable!("planned batches only coalesce planned work");
        };
        let mut ws = ws_slots[i].lock().expect("workspace slot");
        let res = catch_unwind(AssertUnwindSafe(|| {
            session.solve_with_plan(&plan, &mut ws, *perturb)
        }))
        .unwrap_or(Err(ServerError::Poisoned));
        *outcomes[i].lock().expect("outcome slot") = Some(res);
    });

    shared.cache.park(
        fp,
        tag,
        ws_slots
            .into_iter()
            .map(|m| m.into_inner().expect("workspace slot")),
    );
    for (req, out) in batch.into_iter().zip(outcomes) {
        let mut res = out
            .into_inner()
            .expect("outcome slot")
            .expect("every batch index executed");
        if let Ok(o) = &mut res {
            o.batch_size = k;
        }
        fulfill(shared, req, res);
    }
}

fn execute_single(shared: &Shared, req: QueuedRequest) {
    shared.metrics.record_batch(1);
    let res = catch_unwind(AssertUnwindSafe(|| match &req.work {
        Work::Direct { session, perturb } => session.solve_direct(*perturb),
        Work::Extend { session, steps } => session.extend(*steps),
        Work::Planned { session, perturb } => {
            // Unreached today (planned work takes the batch path), kept as
            // a correct unbatched fallback.
            let plan = shared.cache.plan(
                session
                    .fingerprint()
                    .expect("planned work has a fingerprint"),
                session.tag(),
                || session.build_plan(),
            )?;
            let mut ws = plan.workspace();
            session.solve_with_plan(&plan, &mut ws, *perturb)
        }
    }))
    .unwrap_or(Err(ServerError::Poisoned));
    fulfill(shared, req, res);
}

fn fulfill(shared: &Shared, req: QueuedRequest, result: Result<SolveOutcome, ServerError>) {
    let latency = req.submitted.elapsed();
    shared
        .metrics
        .latency
        .record(latency.as_nanos().min(u128::from(u64::MAX)) as u64);
    shared.metrics.completed.fetch_add(1, Ordering::Relaxed);
    if result.is_err() {
        shared.metrics.solve_errors.fetch_add(1, Ordering::Relaxed);
    }
    *req.ticket.slot.lock().expect("ticket lock") = Some(result);
    req.ticket.done.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::values_digest;
    use orianna_graph::{BetweenFactor, PriorFactor};
    use orianna_lie::Pose2;
    use orianna_solver::GaussNewtonSettings;

    fn chain_graph(n: usize) -> FactorGraph {
        let mut g = FactorGraph::new();
        let ids: Vec<_> = (0..n)
            .map(|i| g.add_pose2(Pose2::new(0.05, i as f64 + 0.2, -0.05)))
            .collect();
        g.add_factor(PriorFactor::pose2(ids[0], Pose2::identity(), 0.05));
        for w in ids.windows(2) {
            g.add_factor(BetweenFactor::pose2(
                w[0],
                w[1],
                Pose2::new(0.0, 1.0, 0.0),
                0.1,
            ));
        }
        g
    }

    fn gn() -> BatchFlavor {
        BatchFlavor::GaussNewton(GaussNewtonSettings::default())
    }

    #[test]
    fn serves_batch_sessions_end_to_end() {
        let server = SolverServer::new(ServerConfig::default());
        let a = server.create_batch_session(chain_graph(6), gn()).unwrap();
        let b = server.create_batch_session(chain_graph(6), gn()).unwrap();
        let ta = server
            .submit(Request::Solve {
                session: a,
                perturb: Some(Perturb::new(1, 0.05)),
            })
            .unwrap();
        let tb = server
            .submit(Request::Solve {
                session: b,
                perturb: Some(Perturb::new(2, 0.05)),
            })
            .unwrap();
        let oa = ta.wait().unwrap();
        let ob = tb.wait().unwrap();
        assert!(oa.converged && ob.converged);
        assert_ne!(oa.digest, ob.digest, "different perturbs, different fits");
        let m = server.metrics();
        assert_eq!(m.accepted, 2);
        assert_eq!(m.completed, 2);
        assert_eq!(m.cache.plan_misses, 1, "same topology shares one plan");
        server.shutdown();
    }

    #[test]
    fn batched_outcome_matches_direct_session_solve() {
        let server = SolverServer::new(ServerConfig::default());
        let id = server.create_batch_session(chain_graph(5), gn()).unwrap();
        let p = Perturb::new(9, 0.03);
        let served = server
            .solve_blocking(Request::Solve {
                session: id,
                perturb: Some(p),
            })
            .unwrap();

        // Reference: the same session method, plain plan, no server.
        let reference = Session::batch(SessionId(0), chain_graph(5), gn()).unwrap();
        let plan = reference.build_plan().unwrap();
        let mut ws = plan.workspace();
        let direct = reference.solve_with_plan(&plan, &mut ws, Some(p)).unwrap();
        assert_eq!(served.digest, direct.digest, "bitwise-identical estimates");
        assert_eq!(served.final_error.to_bits(), direct.final_error.to_bits());
        assert_eq!(served.iterations, direct.iterations);
    }

    #[test]
    fn unknown_session_is_structured() {
        let server = SolverServer::new(ServerConfig::default());
        let err = server
            .submit(Request::Solve {
                session: SessionId(42),
                perturb: None,
            })
            .unwrap_err();
        assert_eq!(err, ServerError::UnknownSession(SessionId(42)));
    }

    #[test]
    fn incremental_sessions_extend_through_the_server() {
        let server = SolverServer::new(ServerConfig::default());
        let id = server.create_incremental_session(7).unwrap();
        let o1 = server
            .solve_blocking(Request::Extend {
                session: id,
                steps: 3,
            })
            .unwrap();
        let o2 = server
            .solve_blocking(Request::Extend {
                session: id,
                steps: 2,
            })
            .unwrap();
        assert_ne!(o1.digest, o2.digest, "the trajectory grows");
        // A second server replaying the same ops reproduces both digests.
        let server2 = SolverServer::new(ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        });
        let id2 = server2.create_incremental_session(7).unwrap();
        let r1 = server2
            .solve_blocking(Request::Extend {
                session: id2,
                steps: 3,
            })
            .unwrap();
        let r2 = server2
            .solve_blocking(Request::Extend {
                session: id2,
                steps: 2,
            })
            .unwrap();
        assert_eq!(o1.digest, r1.digest);
        assert_eq!(o2.digest, r2.digest);
    }

    #[test]
    fn shutdown_drains_accepted_requests() {
        let server = SolverServer::new(ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        });
        let id = server.create_batch_session(chain_graph(5), gn()).unwrap();
        let tickets: Vec<_> = (0..8)
            .map(|i| {
                server
                    .submit(Request::Solve {
                        session: id,
                        perturb: Some(Perturb::new(i, 0.02)),
                    })
                    .unwrap()
            })
            .collect();
        server.shutdown();
        for t in tickets {
            t.wait()
                .expect("accepted requests complete through shutdown");
        }
        assert!(matches!(
            server.submit(Request::Solve {
                session: id,
                perturb: None
            }),
            Err(ServerError::ShuttingDown)
        ));
        assert_eq!(server.metrics().completed, 8);
    }

    #[test]
    fn solve_without_perturb_runs_on_current_state() {
        let server = SolverServer::new(ServerConfig::default());
        let id = server.create_batch_session(chain_graph(4), gn()).unwrap();
        let o1 = server
            .solve_blocking(Request::Solve {
                session: id,
                perturb: None,
            })
            .unwrap();
        // Already at the optimum: a second unperturbed solve converges
        // immediately to the same digest.
        let o2 = server
            .solve_blocking(Request::Solve {
                session: id,
                perturb: None,
            })
            .unwrap();
        assert_eq!(o1.digest, o2.digest);
        let g = chain_graph(4);
        assert_ne!(o1.digest, values_digest(g.values()), "the solve moved");
    }

    #[test]
    fn invalidation_forces_a_rebuild() {
        let server = SolverServer::new(ServerConfig::default());
        let g = chain_graph(5);
        let fp = g.structure_fingerprint();
        let id = server.create_batch_session(g, gn()).unwrap();
        server
            .solve_blocking(Request::Solve {
                session: id,
                perturb: Some(Perturb::new(1, 0.02)),
            })
            .unwrap();
        assert!(server.invalidate_topology(fp, 0));
        server
            .solve_blocking(Request::Solve {
                session: id,
                perturb: Some(Perturb::new(2, 0.02)),
            })
            .unwrap();
        let m = server.metrics();
        assert_eq!(m.cache.plan_misses, 2, "invalidation forced a rebuild");
        assert_eq!(m.cache.invalidations, 1);
    }
}
