//! The sequential oracle: replays a [`TrafficPlan`] single-threaded and
//! compares outcomes bitwise against a concurrent server run.
//!
//! The replay uses the *same* [`Session`] solve methods the server's
//! workers call, with one unsharded [`PlanCache`] and one pooled
//! workspace — no queue, no batching, no threads. Because per-request
//! solves are pure functions of `(session state, request)` and
//! incremental sessions are single-owner closed-loop, the concurrent
//! server must reproduce this replay bit for bit at any worker count,
//! shard count, batch size, or `ORIANNA_THREADS`. Any divergence is a
//! determinism bug, and [`compare_reports`] points at the first one.

use crate::error::ServerError;
use crate::load::{build_sessions, OpSpec, TrafficPlan};
use crate::session::{Session, SolveOutcome};
use orianna_solver::PlanCache;
use std::time::Instant;

/// Outcomes of a sequential replay, indexed `[client][op]` like
/// [`crate::load::LoadReport::outcomes`].
pub type SequentialOutcomes = Vec<Vec<Result<SolveOutcome, ServerError>>>;

/// Replays the plan's scripts client-by-client, op-by-op, on one thread.
/// Per-session op order matches any closed-loop concurrent run: batch ops
/// are order-independent (perturb-reset semantics) and incremental ops
/// execute in their single owner's script order.
///
/// # Errors
/// Propagates session-construction errors; per-op errors land in the
/// returned outcome slots instead.
pub fn replay_sequential(plan: &TrafficPlan) -> Result<SequentialOutcomes, ServerError> {
    let sessions = build_sessions(plan)?;
    let mut cache = PlanCache::new();
    let out = plan
        .scripts
        .iter()
        .map(|script| {
            script
                .iter()
                .map(|op| replay_op(&sessions, &mut cache, op))
                .collect()
        })
        .collect();
    Ok(out)
}

fn replay_op(
    sessions: &[Session],
    cache: &mut PlanCache,
    op: &OpSpec,
) -> Result<SolveOutcome, ServerError> {
    match *op {
        OpSpec::Solve { session, perturb } => {
            let s = &sessions[session];
            match s.fingerprint() {
                Some(fp) => {
                    let tag = s.tag();
                    let plan = cache.get_or_build(fp, tag, || s.build_plan())?;
                    let mut ws = cache
                        .take_workspace(fp, tag)
                        .unwrap_or_else(|| plan.workspace());
                    let res = s.solve_with_plan(&plan, &mut ws, Some(perturb));
                    cache.store_workspace(fp, tag, ws);
                    res
                }
                None => s.solve_direct(Some(perturb)),
            }
        }
        OpSpec::Extend { session, steps } => sessions[session].extend(steps),
    }
}

/// Whether two outcomes are the same solve result, bit for bit.
/// `batch_size` is observability (how the request was scheduled), not
/// part of the result, and is ignored.
pub fn outcomes_equivalent(a: &SolveOutcome, b: &SolveOutcome) -> bool {
    a.session == b.session
        && a.iterations == b.iterations
        && a.initial_error.to_bits() == b.initial_error.to_bits()
        && a.final_error.to_bits() == b.final_error.to_bits()
        && a.converged == b.converged
        && a.digest == b.digest
}

/// Compares a server run against the sequential reference, op by op.
///
/// # Errors
/// A human-readable description of the **first** divergence: differing
/// shapes, mismatched outcome fields, or error-vs-success disagreements.
pub fn compare_reports(
    served: &SequentialOutcomes,
    sequential: &SequentialOutcomes,
) -> Result<(), String> {
    if served.len() != sequential.len() {
        return Err(format!(
            "client count diverges: served {} vs sequential {}",
            served.len(),
            sequential.len()
        ));
    }
    for (c, (sv, sq)) in served.iter().zip(sequential).enumerate() {
        if sv.len() != sq.len() {
            return Err(format!(
                "client {c}: op count diverges ({} vs {})",
                sv.len(),
                sq.len()
            ));
        }
        for (i, (a, b)) in sv.iter().zip(sq).enumerate() {
            match (a, b) {
                (Ok(a), Ok(b)) if outcomes_equivalent(a, b) => {}
                (Ok(a), Ok(b)) => {
                    return Err(format!(
                        "client {c} op {i}: outcomes diverge\n  served:     \
                         session={:?} iters={} init={:#x} final={:#x} conv={} digest={:#x}\n  \
                         sequential: session={:?} iters={} init={:#x} final={:#x} conv={} digest={:#x}",
                        a.session,
                        a.iterations,
                        a.initial_error.to_bits(),
                        a.final_error.to_bits(),
                        a.converged,
                        a.digest,
                        b.session,
                        b.iterations,
                        b.initial_error.to_bits(),
                        b.final_error.to_bits(),
                        b.converged,
                        b.digest,
                    ));
                }
                (Err(a), Err(b)) if a == b => {}
                (a, b) => {
                    return Err(format!(
                        "client {c} op {i}: served {a:?} vs sequential {b:?}"
                    ));
                }
            }
        }
    }
    Ok(())
}

/// End-to-end determinism check: installs the plan on a fresh server,
/// drives the concurrent load, replays sequentially, compares bitwise.
/// Returns `(throughput_rps, wall_ns)` of the served run for callers that
/// also want performance numbers.
///
/// # Errors
/// The first divergence, as [`compare_reports`] describes it.
pub fn check_server(
    config: crate::server::ServerConfig,
    plan: &TrafficPlan,
) -> Result<(f64, u64), String> {
    let server = crate::server::SolverServer::new(config);
    crate::load::install_sessions(&server, plan).map_err(|e| format!("install failed: {e}"))?;
    let t0 = Instant::now();
    let report = crate::load::run_load(&server, plan);
    let wall_ns = t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
    server.shutdown();
    let sequential = replay_sequential(plan).map_err(|e| format!("replay failed: {e}"))?;
    compare_reports(&report.outcomes, &sequential)?;
    Ok((report.throughput_rps(), wall_ns))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::{plan_traffic, LoadSpec};
    use crate::server::ServerConfig;
    use crate::session::SessionId;

    fn tiny_spec() -> LoadSpec {
        LoadSpec {
            clients: 2,
            batch_sessions: 4,
            topologies: 2,
            incremental_sessions: 1,
            ops_per_client: 6,
            variables: 6,
            ..LoadSpec::default()
        }
    }

    #[test]
    fn sequential_replay_is_self_consistent() {
        let plan = plan_traffic(&tiny_spec());
        let a = replay_sequential(&plan).unwrap();
        let b = replay_sequential(&plan).unwrap();
        compare_reports(&a, &b).unwrap();
    }

    #[test]
    fn served_run_matches_sequential_replay() {
        let plan = plan_traffic(&tiny_spec());
        let (rps, _) = check_server(
            ServerConfig {
                workers: 2,
                shards: 3,
                max_batch: 4,
                ..ServerConfig::default()
            },
            &plan,
        )
        .unwrap();
        assert!(rps > 0.0);
    }

    #[test]
    fn compare_reports_spots_divergence() {
        let plan = plan_traffic(&tiny_spec());
        let a = replay_sequential(&plan).unwrap();
        let mut b = a.clone();
        if let Some(Ok(o)) = b[0].first_mut() {
            o.digest ^= 1;
        }
        assert!(compare_reports(&a, &b).is_err());
        let mut c = a.clone();
        c[0][0] = Err(ServerError::UnknownSession(SessionId(99)));
        assert!(compare_reports(&a, &c).is_err());
    }
}
