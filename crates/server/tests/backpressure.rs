//! Graceful degradation under overload (ISSUE: fleet-scale serving,
//! backpressure satellite).
//!
//! A server with a tiny queue bound is hit with a burst far beyond its
//! capacity. The contract under test: overload surfaces as structured
//! [`ServerError::Overloaded`] backpressure — the server never panics,
//! never drops an accepted request silently, keeps serving after the
//! burst, and its counters account for every submission exactly.

use orianna_graph::{BetweenFactor, FactorGraph, PriorFactor};
use orianna_lie::Pose2;
use orianna_server::{
    BatchFlavor, Perturb, Request, ServerConfig, ServerError, SolverServer, Ticket,
};
use orianna_solver::GaussNewtonSettings;

fn chain(n: usize) -> FactorGraph {
    let mut g = FactorGraph::new();
    let ids: Vec<_> = (0..n)
        .map(|i| g.add_pose2(Pose2::new(0.05, i as f64 + 0.3, -0.05)))
        .collect();
    g.add_factor(PriorFactor::pose2(ids[0], Pose2::identity(), 0.05));
    for w in ids.windows(2) {
        g.add_factor(BetweenFactor::pose2(
            w[0],
            w[1],
            Pose2::new(0.0, 1.0, 0.0),
            0.1,
        ));
    }
    g
}

fn tiny_server(queue_capacity: usize) -> SolverServer {
    SolverServer::new(ServerConfig {
        workers: 1,
        queue_capacity,
        max_batch: 4,
        shards: 2,
        ..ServerConfig::default()
    })
}

#[test]
fn burst_overload_returns_structured_backpressure() {
    let server = tiny_server(2);
    // A moderately large problem keeps the single worker busy long
    // enough for the burst to hit the bound.
    let id = server
        .create_batch_session(
            chain(60),
            BatchFlavor::GaussNewton(GaussNewtonSettings::default()),
        )
        .unwrap();

    const BURST: u64 = 256;
    let mut accepted: Vec<Ticket> = Vec::new();
    let mut rejected = 0u64;
    for i in 0..BURST {
        match server.submit(Request::Solve {
            session: id,
            perturb: Some(Perturb::new(i, 0.02)),
        }) {
            Ok(t) => accepted.push(t),
            Err(ServerError::Overloaded { capacity }) => {
                assert_eq!(capacity, 2, "the error names the bound that fired");
                rejected += 1;
            }
            Err(other) => panic!("burst must only see Overloaded, got {other}"),
        }
    }
    assert!(
        rejected > 0,
        "a 256-deep burst into capacity 2 must shed load"
    );

    // Every accepted request resolves — none were dropped silently.
    let accepted_n = accepted.len() as u64;
    for t in accepted {
        t.wait().expect("accepted requests complete");
    }

    // The server is still healthy after the burst.
    let after = server
        .solve_blocking(Request::Solve {
            session: id,
            perturb: Some(Perturb::new(9999, 0.02)),
        })
        .expect("server serves normally after overload");
    assert!(after.converged);

    server.shutdown();
    let m = server.metrics();
    assert_eq!(m.accepted, accepted_n + 1);
    assert_eq!(m.rejected_overload, rejected);
    assert_eq!(m.completed, accepted_n + 1, "accounting is exact");
    assert_eq!(m.solve_errors, 0);
}

#[test]
fn concurrent_burst_from_many_clients_stays_sane() {
    let server = tiny_server(4);
    let id = server
        .create_batch_session(
            chain(40),
            BatchFlavor::GaussNewton(GaussNewtonSettings::default()),
        )
        .unwrap();

    const CLIENTS: u64 = 6;
    const PER_CLIENT: u64 = 40;
    let (accepted, rejected) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let server = &server;
                scope.spawn(move || {
                    let mut ok = 0u64;
                    let mut shed = 0u64;
                    for i in 0..PER_CLIENT {
                        match server.submit(Request::Solve {
                            session: id,
                            perturb: Some(Perturb::new(c << 32 | i, 0.02)),
                        }) {
                            Ok(t) => {
                                ok += 1;
                                // Closed-loop half the time, fire-and-forget
                                // otherwise — both must resolve.
                                if i % 2 == 0 {
                                    t.wait().expect("accepted request completes");
                                } else {
                                    drop(t);
                                }
                            }
                            Err(ServerError::Overloaded { .. }) => shed += 1,
                            Err(other) => panic!("unexpected error: {other}"),
                        }
                    }
                    (ok, shed)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .fold((0, 0), |(a, r), (ok, shed)| (a + ok, r + shed))
    });

    server.shutdown();
    let m = server.metrics();
    assert_eq!(m.accepted, accepted);
    assert_eq!(m.rejected_overload, rejected);
    assert_eq!(
        accepted + rejected,
        CLIENTS * PER_CLIENT,
        "no request unaccounted"
    );
    assert_eq!(m.completed, accepted, "every accepted request completed");
    assert_eq!(m.solve_errors, 0);
}

#[test]
fn submissions_after_shutdown_are_refused_not_dropped() {
    let server = tiny_server(8);
    let id = server
        .create_batch_session(
            chain(6),
            BatchFlavor::GaussNewton(GaussNewtonSettings::default()),
        )
        .unwrap();
    server.shutdown();
    assert!(matches!(
        server.submit(Request::Solve {
            session: id,
            perturb: None
        }),
        Err(ServerError::ShuttingDown)
    ));
}
