//! Concurrency stress for the sharded plan cache (ISSUE: fleet-scale
//! serving, stress satellite).
//!
//! N threads hammer one [`ShardedPlanCache`] with interleaved
//! checkout / park / invalidate across several topologies, and the test
//! proves the pool invariants with workspace identities (fresh per
//! allocation, moved — never copied — through the pool):
//!
//! * **no double checkout** — at no instant do two threads hold a
//!   workspace with the same id (a shared live-set insert would fail);
//! * **no lost workspaces** — at quiescence every built arena is parked
//!   or evicted: `builds == parked + evictions`;
//! * **exact counter accounting** — `reuses + builds` equals the total
//!   workspaces checked out across every thread, with no slack.

use orianna_graph::{natural_ordering, BetweenFactor, FactorGraph, PriorFactor};
use orianna_lie::Pose2;
use orianna_server::{splitmix64, ShardedPlanCache};
use orianna_solver::{SolveError, SolvePlan};
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

fn chain(n: usize) -> FactorGraph {
    let mut g = FactorGraph::new();
    let ids: Vec<_> = (0..n)
        .map(|i| g.add_pose2(Pose2::new(0.0, i as f64, 0.0)))
        .collect();
    g.add_factor(PriorFactor::pose2(ids[0], Pose2::identity(), 0.1));
    for w in ids.windows(2) {
        g.add_factor(BetweenFactor::pose2(
            w[0],
            w[1],
            Pose2::new(0.0, 1.0, 0.0),
            0.2,
        ));
    }
    g
}

fn build_for(g: &FactorGraph) -> impl FnOnce() -> Result<SolvePlan, SolveError> + '_ {
    move || SolvePlan::for_graph(g, natural_ordering(g).as_slice())
}

#[test]
fn hammered_cache_keeps_exact_workspace_accounting() {
    const THREADS: usize = 8;
    const OPS_PER_THREAD: usize = 200;

    // Three distinct topologies (different chain lengths → different
    // fingerprints), spread across shards.
    let graphs: Vec<FactorGraph> = [4usize, 6, 9].iter().map(|&n| chain(n)).collect();
    let fps: Vec<u64> = graphs.iter().map(|g| g.structure_fingerprint()).collect();
    assert_eq!(
        fps.iter().collect::<HashSet<_>>().len(),
        3,
        "topologies must be distinct"
    );

    let cache = ShardedPlanCache::new(4, 16);
    let live: Mutex<HashSet<u64>> = Mutex::new(HashSet::new());
    let checked_out = AtomicUsize::new(0);
    let invalidations_issued = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let cache = &cache;
            let graphs = &graphs;
            let fps = &fps;
            let live = &live;
            let checked_out = &checked_out;
            let invalidations_issued = &invalidations_issued;
            scope.spawn(move || {
                for op in 0..OPS_PER_THREAD {
                    let draw = splitmix64(((t as u64) << 32) ^ op as u64);
                    let which = (draw % 3) as usize;
                    let fp = fps[which];
                    // Mostly checkouts of varying batch width, with a
                    // sprinkle of invalidations racing them.
                    if draw.is_multiple_of(13) {
                        cache.invalidate(fp, 0);
                        invalidations_issued.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    let k = 1 + (draw >> 8) as usize % 4;
                    let (plan, workspaces) = cache
                        .checkout(fp, 0, k, build_for(&graphs[which]))
                        .expect("plan builds");
                    assert_eq!(plan.fingerprint(), fp);
                    assert_eq!(workspaces.len(), k);
                    checked_out.fetch_add(k, Ordering::Relaxed);
                    {
                        let mut held = live.lock().unwrap();
                        for ws in &workspaces {
                            assert!(
                                held.insert(ws.id()),
                                "workspace {} checked out twice concurrently",
                                ws.id()
                            );
                        }
                    }
                    // Simulate a little work so checkouts overlap.
                    std::hint::black_box(&workspaces);
                    std::thread::yield_now();
                    {
                        let mut held = live.lock().unwrap();
                        for ws in &workspaces {
                            assert!(held.remove(&ws.id()), "workspace id vanished while held");
                        }
                    }
                    cache.park(fp, 0, workspaces);
                }
            });
        }
    });

    assert!(live.lock().unwrap().is_empty(), "all checkouts returned");
    let stats = cache.stats();
    let total = checked_out.load(Ordering::Relaxed) as u64;
    assert_eq!(
        stats.workspace_reuses + stats.workspace_builds,
        total,
        "every checkout is exactly one reuse or one build"
    );
    assert_eq!(
        stats.workspace_builds,
        cache.parked_workspaces() as u64 + stats.workspace_evictions,
        "no lost workspaces: builds == parked + evictions"
    );
    assert!(stats.workspace_reuses > 0, "pooling actually reused arenas");
    // Plan lookups: a miss only happens on first use or after an
    // invalidation dropped the entry, so misses ≤ invalidations + 3.
    assert!(
        stats.plan_misses as usize <= invalidations_issued.load(Ordering::Relaxed) + 3,
        "misses ({}) bounded by invalidations ({}) + topologies",
        stats.plan_misses,
        invalidations_issued.load(Ordering::Relaxed)
    );
}

#[test]
fn invalidation_during_checkout_never_loses_outstanding_workspaces() {
    // One topology, two threads: one checks out and parks, the other
    // invalidates in a tight loop. Outstanding arenas survive
    // invalidation (they are owned by the checker-outer) and parking
    // them back repopulates the pool.
    let g = chain(5);
    let fp = g.structure_fingerprint();
    let cache = ShardedPlanCache::new(2, 8);

    std::thread::scope(|scope| {
        let worker = scope.spawn(|| {
            for _ in 0..300 {
                let (_, wss) = cache.checkout(fp, 0, 2, build_for(&g)).expect("plan");
                std::hint::black_box(&wss);
                cache.park(fp, 0, wss);
            }
        });
        let invalidator = scope.spawn(|| {
            for _ in 0..100 {
                cache.invalidate(fp, 0);
                std::thread::yield_now();
            }
        });
        worker.join().unwrap();
        invalidator.join().unwrap();
    });

    let stats = cache.stats();
    assert_eq!(
        stats.workspace_builds,
        cache.parked_workspaces() as u64 + stats.workspace_evictions,
        "builds == parked + evictions even under racing invalidation"
    );
    assert_eq!(stats.workspace_reuses + stats.workspace_builds, 600);
}
