//! Property-based tests for the QR decompositions (ISSUE: conformance
//! harness, QR oracle). The Givens path is what the hardware QR unit
//! implements, so it gets the strictest treatment: orthogonality of the
//! accumulated `Q`, reconstruction of `A`, triangularity of `R`, and
//! agreement with the Householder reference — including on rank-deficient
//! tall matrices, which show up whenever a variable is unconstrained in
//! one of its tangent directions.

use orianna_math::{givens_qr, givens_qr_full, householder_qr, partial_qr, Mat};
use proptest::prelude::*;

fn entry() -> impl Strategy<Value = f64> {
    -2.0f64..2.0
}

/// ‖QᵀQ − I‖ for an `m×m` candidate orthogonal matrix.
fn orthogonality_defect(q: &Mat) -> f64 {
    let m = q.rows();
    (&q.transpose().mul_mat(q) - &Mat::identity(m)).norm()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn givens_q_is_orthogonal_and_reconstructs(vals in prop::collection::vec(entry(), 42)) {
        // 7×6 tall matrix.
        let a = Mat::from_row_major(7, 6, &vals);
        let (f, rotations) = givens_qr_full(&a);
        prop_assert!(orthogonality_defect(&f.q) < 1e-10, "defect {}", orthogonality_defect(&f.q));
        prop_assert!((&f.q.mul_mat(&f.r) - &a).norm() < 1e-10);
        prop_assert!(f.r.is_upper_triangular(1e-10));
        prop_assert!(rotations <= 6 * 6 + 5 + 4 + 3 + 2 + 1);
    }

    #[test]
    fn givens_full_matches_rotation_only_variant(vals in prop::collection::vec(entry(), 24)) {
        let a = Mat::from_row_major(6, 4, &vals);
        let (f, rot_full) = givens_qr_full(&a);
        let (r_only, rot_only) = givens_qr(&a);
        prop_assert_eq!(rot_full, rot_only);
        prop_assert!((&f.r - &r_only).norm() < 1e-12);
    }

    #[test]
    fn givens_agrees_with_householder_up_to_row_signs(vals in prop::collection::vec(entry(), 20)) {
        let a = Mat::from_row_major(5, 4, &vals);
        let (fg, _) = givens_qr_full(&a);
        let fh = householder_qr(&a);
        for r in 0..4 {
            for c in 0..4 {
                prop_assert!(
                    (fg.r[(r, c)].abs() - fh.r[(r, c)].abs()).abs() < 1e-9,
                    "({},{}): {} vs {}", r, c, fg.r[(r, c)], fh.r[(r, c)]
                );
            }
        }
    }

    #[test]
    fn rank_deficient_tall_matrix_still_factors(vals in prop::collection::vec(entry(), 12)) {
        // Build a 6×3 matrix whose third column is a linear combination of
        // the first two — rank ≤ 2 by construction.
        let base = Mat::from_row_major(6, 2, &vals);
        let mut a = Mat::zeros(6, 3);
        for r in 0..6 {
            a[(r, 0)] = base[(r, 0)];
            a[(r, 1)] = base[(r, 1)];
            a[(r, 2)] = 0.5 * base[(r, 0)] - 1.5 * base[(r, 1)];
        }
        let (f, _) = givens_qr_full(&a);
        prop_assert!(orthogonality_defect(&f.q) < 1e-10);
        prop_assert!((&f.q.mul_mat(&f.r) - &a).norm() < 1e-10);
        prop_assert!(f.r.is_upper_triangular(1e-10));
        // Rank deficiency must surface as a (near-)zero trailing diagonal.
        prop_assert!(f.r[(2, 2)].abs() < 1e-9, "r22 = {}", f.r[(2, 2)]);

        let fh = householder_qr(&a);
        prop_assert!((&fh.q.mul_mat(&fh.r) - &a).norm() < 1e-10);
    }

    #[test]
    fn partial_qr_preserves_column_norms(vals in prop::collection::vec(entry(), 30), k in 0usize..5) {
        let a = Mat::from_row_major(6, 5, &vals);
        let r = partial_qr(&a, k);
        for c in 0..5 {
            let an: f64 = (0..6).map(|i| a[(i, c)] * a[(i, c)]).sum::<f64>().sqrt();
            let rn: f64 = (0..6).map(|i| r[(i, c)] * r[(i, c)]).sum::<f64>().sqrt();
            prop_assert!((an - rn).abs() < 1e-9, "col {}", c);
        }
        for col in 0..k.min(5) {
            for row in col + 1..6 {
                prop_assert!(r[(row, col)].abs() < 1e-10);
            }
        }
    }
}

#[test]
fn zero_matrix_needs_no_rotations() {
    let a = Mat::zeros(5, 3);
    let (f, rotations) = givens_qr_full(&a);
    assert_eq!(rotations, 0);
    assert!(orthogonality_defect(&f.q) < 1e-15);
    assert!(f.r.norm() < 1e-15);
}
