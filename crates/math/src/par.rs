//! Shared parallel-execution substrate.
//!
//! Every parallel path in the workspace (per-factor linearization in
//! `orianna-graph`, independent-clique elimination in `orianna-solver`,
//! batched simulation in `orianna-hw`) funnels through this module so the
//! policy lives in one place:
//!
//! * [`Parallelism`] — the user-facing knob: how many worker threads a
//!   parallel section may use. Defaults to the machine's available cores;
//!   `threads <= 1` selects the serial reference path everywhere.
//! * [`run_tasks`] — executes a deterministic, *ordered* task list on a
//!   lazily-started global worker pool and returns the results in task
//!   order. Determinism is by construction: callers decide the task split
//!   deterministically, each task is a pure function of its owned inputs,
//!   and results are merged by index — never by completion order — so any
//!   thread count produces bitwise-identical output.
//!
//! The pool is a fixed set of detached workers fed through a channel; a
//! [`run_tasks`] call enqueues lightweight "drainer" jobs that pull tasks
//! from the call's own queue, and the calling thread drains that queue
//! too. Pool workers therefore *accelerate* a call but are never required
//! for progress — on a single-core machine, or with a saturated pool, the
//! caller completes all tasks itself.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread;

/// How many worker threads a parallel section may use.
///
/// `threads <= 1` disables parallel dispatch entirely: every consumer
/// falls back to its serial reference implementation. Results are
/// independent of `threads` (see the determinism tests in
/// `tests/parallel.rs`); only wall-clock time changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    /// Maximum concurrent worker threads (including the calling thread).
    pub threads: usize,
}

impl Default for Parallelism {
    /// The `ORIANNA_THREADS` environment override when set (and a valid
    /// positive integer), otherwise all available cores. This is the one
    /// thread knob of the workspace: the solver's iteration loops and the
    /// hardware DSE sweeps both start from `Parallelism::default()`, so a
    /// single environment variable pins every parallel section at once.
    fn default() -> Self {
        Self {
            threads: env_threads().unwrap_or_else(available_threads),
        }
    }
}

/// Parses the `ORIANNA_THREADS` override; `None` when unset or not a
/// positive integer (values are clamped to ≥ 1 like
/// [`Parallelism::with_threads`]).
fn env_threads() -> Option<usize> {
    let raw = std::env::var("ORIANNA_THREADS").ok()?;
    raw.trim().parse::<usize>().ok().map(|t| t.max(1))
}

impl Parallelism {
    /// The serial reference configuration.
    pub fn serial() -> Self {
        Self { threads: 1 }
    }

    /// A configuration with exactly `threads` workers (clamped to ≥ 1).
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// Whether parallel dispatch is enabled at all.
    pub fn is_parallel(&self) -> bool {
        self.threads > 1
    }
}

/// Number of hardware threads the runtime reports (≥ 1).
pub fn available_threads() -> usize {
    thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1)
}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Pool {
    sender: Sender<Job>,
    workers: usize,
}

/// The global pool is sized generously (at least 8 workers) so that
/// determinism tests exercise true cross-thread execution even on small
/// machines; idle workers cost nothing.
fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let workers = available_threads().max(8);
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        for i in 0..workers {
            let receiver = Arc::clone(&receiver);
            thread::Builder::new()
                .name(format!("orianna-par-{i}"))
                .spawn(move || loop {
                    let job = match receiver.lock() {
                        Ok(rx) => rx.recv(),
                        Err(_) => break,
                    };
                    match job {
                        Ok(job) => job(),
                        Err(_) => break, // pool dropped
                    }
                })
                .expect("spawn pool worker");
        }
        Pool { sender, workers }
    })
}

type TaskQueue<R> = Arc<Mutex<VecDeque<(usize, Box<dyn FnOnce() -> R + Send>)>>>;

fn drain<R: Send>(queue: &TaskQueue<R>, results: &Sender<(usize, thread::Result<R>)>) {
    loop {
        let next = queue.lock().expect("task queue").pop_front();
        let Some((idx, task)) = next else { break };
        let outcome = catch_unwind(AssertUnwindSafe(task));
        if results.send((idx, outcome)).is_err() {
            break;
        }
    }
}

/// Runs `tasks` with up to `threads` concurrent workers and returns their
/// results **in task order**. With `threads <= 1` (or a single task) the
/// tasks run inline on the calling thread, in order — the serial
/// reference. A panicking task is re-raised on the caller after all
/// remaining tasks complete.
pub fn run_tasks<R: Send + 'static>(
    threads: usize,
    tasks: Vec<Box<dyn FnOnce() -> R + Send + 'static>>,
) -> Vec<R> {
    let n = tasks.len();
    if threads <= 1 || n <= 1 {
        return tasks.into_iter().map(|t| t()).collect();
    }
    let queue: TaskQueue<R> = Arc::new(Mutex::new(tasks.into_iter().enumerate().collect()));
    let (tx, rx) = channel();
    let helpers = (threads - 1).min(n - 1).min(pool().workers);
    for _ in 0..helpers {
        let queue = Arc::clone(&queue);
        let tx = tx.clone();
        pool()
            .sender
            .send(Box::new(move || drain(&queue, &tx)))
            .expect("pool accepts jobs");
    }
    // The caller participates; it alone guarantees progress.
    drain(&queue, &tx);
    drop(tx);

    let mut slots: Vec<Option<thread::Result<R>>> = (0..n).map(|_| None).collect();
    for (idx, outcome) in rx {
        slots[idx] = Some(outcome);
    }
    let mut out = Vec::with_capacity(n);
    let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
    for slot in slots {
        match slot.expect("every task reports exactly once") {
            Ok(r) => out.push(r),
            Err(p) => panic = Some(p),
        }
    }
    if let Some(p) = panic {
        resume_unwind(p);
    }
    out
}

/// Convenience: maps `items` through `f` in parallel, preserving order.
/// `f` must be `Sync` (it is shared across workers) and the items are
/// moved into the tasks.
pub fn par_map<T, R, F>(par: &Parallelism, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send + 'static,
    R: Send + 'static,
    F: Fn(T) -> R + Send + Sync + 'static,
{
    if !par.is_parallel() || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let f = Arc::new(f);
    let tasks: Vec<Box<dyn FnOnce() -> R + Send>> = items
        .into_iter()
        .map(|item| {
            let f = Arc::clone(&f);
            Box::new(move || f(item)) as Box<dyn FnOnce() -> R + Send>
        })
        .collect();
    run_tasks(par.threads, tasks)
}

/// Runs up to `min(par.threads, workers)` copies of `f` on scoped worker
/// threads and returns their outputs in worker-id order.
///
/// This is the borrow-friendly sibling of [`run_tasks`]: the closure may
/// capture references to caller-owned data (scoped threads, no `'static`
/// bound), which is what the hardware sweeps need — a worker borrows the
/// decoded workload and the candidate configurations while owning its
/// per-worker scratch. Callers distribute work themselves, typically by
/// pulling indices from a shared `AtomicUsize`, and must merge results by
/// item index (never by completion order) to stay deterministic.
///
/// Worker 0 runs on the calling thread, so progress never depends on the
/// scheduler; with `par.threads <= 1` or `workers <= 1` the single worker
/// runs inline and the call is the serial reference path. A panicking
/// worker propagates to the caller when the scope joins.
pub fn scoped_workers<R, F>(par: &Parallelism, workers: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let n = par.threads.min(workers).max(1);
    if n == 1 {
        return vec![f(0)];
    }
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    std::thread::scope(|s| {
        let (first, rest) = out.split_first_mut().expect("n >= 1");
        let f = &f;
        let handles: Vec<_> = rest
            .iter_mut()
            .enumerate()
            .map(|(i, slot)| s.spawn(move || *slot = Some(f(i + 1))))
            .collect();
        // Run worker 0 inline, guarded so a panic still joins the spawned
        // workers before unwinding (mirroring `run_tasks`); the original
        // payload is re-raised with its message intact.
        let inline = catch_unwind(AssertUnwindSafe(|| *first = Some(f(0))));
        let mut panic = inline.err();
        for h in handles {
            if let Err(p) = h.join() {
                panic.get_or_insert(p);
            }
        }
        if let Some(p) = panic {
            resume_unwind(p);
        }
    });
    out.into_iter()
        .map(|r| r.expect("every worker produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_arrive_in_task_order() {
        for threads in [1, 2, 4, 8] {
            let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..37usize)
                .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
                .collect();
            let out = run_tasks(threads, tasks);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn tasks_actually_run_on_multiple_threads() {
        // With enough tasks that block until a sibling joins, at least two
        // distinct threads must participate (pool has ≥ 8 workers).
        let seen = Arc::new(Mutex::new(std::collections::HashSet::new()));
        let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..16)
            .map(|_| {
                let seen = Arc::clone(&seen);
                Box::new(move || {
                    seen.lock().unwrap().insert(thread::current().id());
                    thread::sleep(std::time::Duration::from_millis(2));
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        run_tasks(4, tasks);
        assert!(
            seen.lock().unwrap().len() >= 2,
            "expected cross-thread execution"
        );
    }

    #[test]
    fn par_map_matches_serial_map() {
        let items: Vec<u64> = (0..100).collect();
        let serial = par_map(&Parallelism::serial(), items.clone(), |x| {
            x.wrapping_mul(31) ^ 7
        });
        let parallel = par_map(&Parallelism::with_threads(4), items, |x| {
            x.wrapping_mul(31) ^ 7
        });
        assert_eq!(serial, parallel);
    }

    #[test]
    fn counts_every_task_exactly_once() {
        let counter = Arc::new(AtomicUsize::new(0));
        let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..257)
            .map(|_| {
                let c = Arc::clone(&counter);
                Box::new(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        run_tasks(8, tasks);
        assert_eq!(counter.load(Ordering::SeqCst), 257);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn task_panics_propagate_to_caller() {
        let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..4)
            .map(|i| {
                Box::new(move || {
                    if i == 2 {
                        panic!("boom");
                    }
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        run_tasks(4, tasks);
    }

    #[test]
    fn parallelism_defaults_and_clamping() {
        assert!(Parallelism::default().threads >= 1);
        assert_eq!(Parallelism::with_threads(0).threads, 1);
        assert!(!Parallelism::serial().is_parallel());
        assert!(Parallelism::with_threads(4).is_parallel());
    }

    #[test]
    fn orianna_threads_env_override() {
        // `env_threads` parses the override directly so the assertion does
        // not race other tests reading `Parallelism::default()`.
        std::env::set_var("ORIANNA_THREADS", "3");
        assert_eq!(env_threads(), Some(3));
        assert_eq!(Parallelism::default().threads, 3);
        std::env::set_var("ORIANNA_THREADS", "0");
        assert_eq!(env_threads(), Some(1), "zero clamps to one");
        std::env::set_var("ORIANNA_THREADS", "not-a-number");
        assert_eq!(env_threads(), None, "garbage falls back to cores");
        std::env::remove_var("ORIANNA_THREADS");
        assert_eq!(env_threads(), None);
        assert!(Parallelism::default().threads >= 1);
    }

    #[test]
    fn scoped_workers_runs_every_worker_once() {
        for threads in [1usize, 2, 4, 8] {
            let par = Parallelism::with_threads(threads);
            let out = scoped_workers(&par, 6, |id| id * 10);
            let expect: Vec<usize> = (0..threads.min(6)).map(|id| id * 10).collect();
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    #[test]
    fn scoped_workers_drain_shared_counter_deterministically() {
        // The canonical usage: workers pull item indices from a shared
        // counter and the caller merges by index. Every item is processed
        // exactly once at any thread count.
        let items: Vec<u64> = (0..97).map(|i| i * 3 + 1).collect();
        for threads in [1usize, 2, 4, 8] {
            let next = AtomicUsize::new(0);
            let per_worker =
                scoped_workers(&Parallelism::with_threads(threads), items.len(), |_| {
                    let mut done = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        done.push((i, items[i] * items[i]));
                    }
                    done
                });
            let mut merged = vec![0u64; items.len()];
            let mut count = 0usize;
            for chunk in per_worker {
                for (i, v) in chunk {
                    merged[i] = v;
                    count += 1;
                }
            }
            assert_eq!(count, items.len(), "threads={threads}");
            for (i, item) in items.iter().enumerate() {
                assert_eq!(merged[i], item * item);
            }
        }
    }

    #[test]
    #[should_panic(expected = "scoped boom")]
    fn scoped_worker_panics_propagate() {
        scoped_workers(&Parallelism::with_threads(4), 4, |id| {
            if id == 2 {
                panic!("scoped boom");
            }
            id
        });
    }
}
