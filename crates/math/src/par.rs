//! Shared parallel-execution substrate.
//!
//! Every parallel path in the workspace (per-factor linearization in
//! `orianna-graph`, independent-clique elimination in `orianna-solver`,
//! batched simulation in `orianna-hw`) funnels through this module so the
//! policy lives in one place:
//!
//! * [`Parallelism`] — the user-facing knob: how many worker threads a
//!   parallel section may use, and whether the cost model may gate a
//!   region back to serial ([`Parallelism::auto`]). Defaults to auto mode
//!   with the machine's available cores; `threads <= 1` selects the serial
//!   reference path everywhere.
//! * [`run_tasks`] — executes a deterministic, *ordered* task list on the
//!   worker pool and returns the results in task order. Determinism is by
//!   construction: callers decide the task split deterministically, each
//!   task is a pure function of its owned inputs, and results are merged
//!   by index — never by completion order — so any thread count produces
//!   bitwise-identical output.
//! * [`scoped_workers`] / [`try_scoped_workers`] — the borrow-friendly
//!   sibling: runs `n` copies of a closure that may capture references to
//!   caller-owned data, merging outputs by worker id.
//!
//! Both entry points dispatch onto one lazily-started **persistent pool**
//! of parked worker threads. A parallel region publishes a type-erased job
//! descriptor, wakes as many workers as it wants helpers, and the workers
//! claim worker ids from the job's atomic cursor. The calling thread
//! always participates and, crucially, *claims every id the pool has not
//! taken yet* — pool workers accelerate a call but are never required for
//! progress, so a saturated (or single-core) machine degrades to inline
//! serial execution instead of deadlocking. Dispatch therefore costs a
//! couple of microseconds (one queue push + wakeup), not a thread spawn,
//! and because the workers are persistent their thread-local scratch pools
//! ([`crate::scratch`]) survive from one parallel region to the next.

use std::any::Any;
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;

/// How many worker threads a parallel section may use.
///
/// `threads <= 1` disables parallel dispatch entirely: every consumer
/// falls back to its serial reference implementation. In **auto** mode
/// (the default) each consumer additionally gates its region through
/// [`Parallelism::effective_threads`] with an estimated amount of work,
/// so regions too small to amortize dispatch run serially no matter how
/// many threads are configured. Results are independent of both `threads`
/// and the gating decision (see the determinism tests in
/// `tests/parallel.rs`); only wall-clock time changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    /// Maximum concurrent worker threads (including the calling thread).
    pub threads: usize,
    /// Cost-model gating: when set, regions below the work threshold run
    /// serially even though `threads > 1`.
    auto: bool,
}

impl Default for Parallelism {
    /// Auto (cost-gated) mode with the `ORIANNA_THREADS` environment
    /// override when set (and a valid positive integer), otherwise all
    /// available cores; either way the count is clamped to the cores the
    /// machine actually has — oversubscribing a small container is a pure
    /// loss. This is the one thread knob of the workspace: the solver's
    /// iteration loops and the hardware DSE sweeps both start from
    /// `Parallelism::default()`, so a single environment variable pins
    /// every parallel section at once.
    fn default() -> Self {
        Self::auto()
    }
}

/// Parses one `ORIANNA_THREADS`-style value; `None` when not a positive
/// integer (values are clamped to ≥ 1 like [`Parallelism::with_threads`]).
/// Malformed values therefore fall back to auto-detection instead of
/// being silently re-tried on a later read.
fn parse_threads(raw: &str) -> Option<usize> {
    raw.trim().parse::<usize>().ok().map(|t| t.max(1))
}

/// The `ORIANNA_THREADS` override; `None` when unset or malformed.
///
/// The environment is read and parsed **once per process**:
/// `Parallelism::default()` sits on every solve's hot path (optimizer
/// construction, DSE sweeps, server sessions), and `std::env::var` takes a
/// process-wide lock plus a UTF-8 validation per call. The knob is a
/// deployment setting, not a runtime one, so later mutations of the
/// variable are intentionally ignored.
fn env_threads() -> Option<usize> {
    static THREADS: OnceLock<Option<usize>> = OnceLock::new();
    *THREADS.get_or_init(|| {
        std::env::var("ORIANNA_THREADS")
            .ok()
            .and_then(|raw| parse_threads(&raw))
    })
}

/// Default estimated-work threshold (abstract units ≈ flops ≈ serial
/// nanoseconds) below which auto mode runs a region serially. Calibrated
/// on the bench suite: pool dispatch plus by-index merge costs a handful
/// of microseconds, so a region needs a couple hundred microseconds of
/// serial work before a second worker can pay for itself (DESIGN §3.2.4).
pub const AUTO_WORK_THRESHOLD: u64 = 200_000;

/// Parses one `ORIANNA_PAR_THRESHOLD`-style value; `None` when not a
/// non-negative integer, so malformed overrides fall back to
/// [`AUTO_WORK_THRESHOLD`] instead of partially applying.
fn parse_threshold(raw: &str) -> Option<u64> {
    raw.trim().parse::<u64>().ok()
}

/// The active auto-mode threshold: `ORIANNA_PAR_THRESHOLD` when set to a
/// non-negative integer, otherwise [`AUTO_WORK_THRESHOLD`]. Read and
/// parsed once per process, like [`env_threads`].
pub fn auto_threshold() -> u64 {
    static THRESHOLD: OnceLock<u64> = OnceLock::new();
    *THRESHOLD.get_or_init(|| {
        std::env::var("ORIANNA_PAR_THRESHOLD")
            .ok()
            .and_then(|raw| parse_threshold(&raw))
            .unwrap_or(AUTO_WORK_THRESHOLD)
    })
}

impl Parallelism {
    /// The serial reference configuration.
    pub fn serial() -> Self {
        Self {
            threads: 1,
            auto: false,
        }
    }

    /// A configuration with exactly `threads` workers (clamped to ≥ 1),
    /// **not** cost-gated: parallel sections dispatch regardless of size.
    /// This is the determinism-test configuration; production callers
    /// want [`Parallelism::auto`].
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            auto: false,
        }
    }

    /// Cost-gated mode with the `ORIANNA_THREADS` override (clamped to
    /// available cores) or all available cores.
    pub fn auto() -> Self {
        let avail = available_threads();
        Self {
            threads: env_threads().unwrap_or(avail).min(avail),
            auto: true,
        }
    }

    /// Cost-gated mode with at most `threads` workers, clamped to ≥ 1 and
    /// to the machine's available cores.
    pub fn auto_with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1).min(available_threads()),
            auto: true,
        }
    }

    /// Whether parallel dispatch is enabled at all.
    pub fn is_parallel(&self) -> bool {
        self.threads > 1
    }

    /// Whether cost-model gating is active.
    pub fn is_auto(&self) -> bool {
        self.auto
    }

    /// Worker count the cost model grants a region of estimated `work`
    /// (abstract units ≈ flops ≈ serial nanoseconds). Non-auto
    /// configurations always get `threads`. Auto mode returns 1 below
    /// [`auto_threshold`] and then ramps: one extra worker per threshold
    /// of work, capped at `threads`, so each granted worker has enough
    /// work to amortize its share of dispatch and merge overhead.
    pub fn effective_threads(&self, work: u64) -> usize {
        if !self.auto || self.threads <= 1 {
            return self.threads;
        }
        let t = auto_threshold().max(1);
        if work < t {
            1
        } else {
            self.threads.min((work / t) as usize + 1)
        }
    }

    /// The concrete (non-auto) configuration the cost model grants a
    /// region of estimated `work`: consumers call this once per region
    /// and then branch on [`Parallelism::is_parallel`] as before.
    pub fn gate(&self, work: u64) -> Parallelism {
        Parallelism::with_threads(self.effective_threads(work))
    }
}

/// Number of hardware threads the runtime reports (≥ 1).
pub fn available_threads() -> usize {
    thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1)
}

/// A parallel region that could not produce its results.
///
/// Surfaced by [`try_scoped_workers`]; the panicking sibling
/// [`scoped_workers`] re-raises the original payload instead.
pub enum ParError {
    /// A worker closure panicked. `message` is the stringified payload
    /// (when it was a `&str` or `String`); `payload` is the original
    /// panic value so callers can re-raise it intact.
    WorkerPanicked {
        /// Worker id (0 = the calling thread) that panicked first.
        worker: usize,
        /// Human-readable panic message, best effort.
        message: String,
        /// The original panic payload.
        payload: Box<dyn Any + Send + 'static>,
    },
    /// A worker finished without storing its result — a pool-protocol
    /// violation that should be unreachable; surfaced structurally
    /// instead of via `unwrap` so callers can diagnose it.
    MissingResult {
        /// Worker id whose slot stayed empty.
        worker: usize,
    },
}

impl ParError {
    fn message_of(payload: &(dyn Any + Send)) -> String {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        }
    }
}

impl std::fmt::Debug for ParError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParError::WorkerPanicked {
                worker, message, ..
            } => f
                .debug_struct("WorkerPanicked")
                .field("worker", worker)
                .field("message", message)
                .finish_non_exhaustive(),
            ParError::MissingResult { worker } => f
                .debug_struct("MissingResult")
                .field("worker", worker)
                .finish(),
        }
    }
}

impl std::fmt::Display for ParError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParError::WorkerPanicked {
                worker, message, ..
            } => {
                write!(f, "parallel worker {worker} panicked: {message}")
            }
            ParError::MissingResult { worker } => {
                write!(f, "parallel worker {worker} produced no result")
            }
        }
    }
}

impl std::error::Error for ParError {}

/// Type-erased entry point of a scoped job: runs worker `id` of the job
/// whose context lives behind `ctx`.
type RunFn = unsafe fn(ctx: *const (), id: usize);

/// Claim-cursor value of a job with no active region: any id claimed
/// from it is far beyond every plausible worker count, so a stale pool
/// worker that wakes up between regions bails without touching the job's
/// context. Far below `usize::MAX` so stray `fetch_add`s never wrap.
const IDLE_CURSOR: usize = usize::MAX / 2;

/// Shared state of one parallel region, published to the pool by
/// reference count. The raw `ctx` pointer targets stack data of the
/// dispatching caller; it is only dereferenced by workers that claimed an
/// id `< workers` from `next`, and the caller does not return before
/// `pending` reaches zero, so every dereference happens while the stack
/// frame is alive.
///
/// `run`/`ctx`/`workers` are atomics so a [`WorkerTeam`] can reuse one
/// `JobShared` allocation across regions: the caller rewrites them while
/// the job is idle (`pending == 0`, `next == IDLE_CURSOR`) and then
/// publishes the region with one release store of `next = 1`. A worker's
/// acquire claim on `next` therefore orders its reads of `run`/`ctx`/
/// `workers` after the caller's writes; workers woken through the
/// injector queue are ordered by the queue mutex as well.
struct JobShared {
    /// The region's entry point ([`RunFn`] bits; meaningless while idle).
    run: AtomicUsize,
    ctx: AtomicPtr<()>,
    /// Total worker ids of this region (id 0 belongs to the caller).
    workers: AtomicUsize,
    /// Claim cursor: the next unclaimed worker id (starts at 1; parked at
    /// [`IDLE_CURSOR`] between a reusable team's regions).
    next: AtomicUsize,
    /// Unfinished worker ids; the caller waits for this to hit zero.
    pending: AtomicUsize,
    /// First panic observed by any worker, with its worker id.
    panic: Mutex<Option<(usize, Box<dyn Any + Send + 'static>)>>,
    done_lock: Mutex<()>,
    done_cv: Condvar,
}

// Safety: `ctx` is only dereferenced under the claim protocol described
// on [`JobShared`], and `try_scoped_workers` requires `F: Sync` (the
// closure is shared across threads) and `R: Send` (results move back to
// the caller).
unsafe impl Send for JobShared {}
unsafe impl Sync for JobShared {}

impl JobShared {
    /// A fresh job with the claim cursor parked: nothing runs until a
    /// region is published.
    fn idle() -> Self {
        Self {
            run: AtomicUsize::new(0),
            ctx: AtomicPtr::new(std::ptr::null_mut()),
            workers: AtomicUsize::new(0),
            next: AtomicUsize::new(IDLE_CURSOR),
            pending: AtomicUsize::new(0),
            panic: Mutex::new(None),
            done_lock: Mutex::new(()),
            done_cv: Condvar::new(),
        }
    }

    /// Claims and runs worker ids until the cursor is exhausted. Shared
    /// by pool workers and (for ids the pool never took) the caller.
    fn service(&self) {
        loop {
            // Acquire pairs with the release store of `next = 1` that
            // published the region, ordering the `run`/`ctx`/`workers`
            // reads below after the caller's writes.
            let id = self.next.fetch_add(1, Ordering::AcqRel);
            if id >= self.workers.load(Ordering::Acquire) {
                return;
            }
            self.run_one(id);
        }
    }

    /// Runs one claimed worker id under a panic guard and retires it.
    fn run_one(&self, id: usize) {
        let run: RunFn = unsafe { std::mem::transmute(self.run.load(Ordering::Acquire)) };
        let ctx: *const () = self.ctx.load(Ordering::Acquire);
        let outcome = catch_unwind(AssertUnwindSafe(|| unsafe { run(ctx, id) }));
        if let Err(payload) = outcome {
            let mut slot = self.panic.lock().expect("panic slot");
            slot.get_or_insert((id, payload));
        }
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Hold the lock while notifying so the caller cannot check
            // `pending` and block between our decrement and the wakeup.
            let _guard = self.done_lock.lock().expect("done lock");
            self.done_cv.notify_all();
        }
    }

    /// Blocks the caller until every claimed id has retired.
    fn wait(&self) {
        let mut guard = self.done_lock.lock().expect("done lock");
        while self.pending.load(Ordering::Acquire) != 0 {
            guard = self.done_cv.wait(guard).expect("done wait");
        }
    }
}

/// The persistent pool: parked worker threads plus the injector queue
/// they drain. Jobs are `Arc`s, so a worker that wakes up to an already
/// finished job (its cursor exhausted by the caller) simply discards the
/// reference — the stale entry never touches the job's context.
struct PoolShared {
    inject: Mutex<VecDeque<Arc<JobShared>>>,
    wake: Condvar,
}

struct Pool {
    shared: Arc<PoolShared>,
    workers: usize,
}

/// The global pool is sized generously (at least 8 workers) so that
/// determinism tests exercise true cross-thread execution even on small
/// machines; parked workers cost nothing.
fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let workers = available_threads().max(8);
        let shared = Arc::new(PoolShared {
            // Dispatch caps the backlog at one entry per worker, so this
            // initial capacity is also the queue's final capacity — the
            // injector never reallocates.
            inject: Mutex::new(VecDeque::with_capacity(workers)),
            wake: Condvar::new(),
        });
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name(format!("orianna-par-{i}"))
                .spawn(move || loop {
                    let job = {
                        let mut queue = match shared.inject.lock() {
                            Ok(q) => q,
                            Err(_) => return,
                        };
                        loop {
                            if let Some(job) = queue.pop_front() {
                                break job;
                            }
                            queue = match shared.wake.wait(queue) {
                                Ok(q) => q,
                                Err(_) => return,
                            };
                        }
                    };
                    job.service();
                })
                .expect("spawn pool worker");
        }
        Pool { shared, workers }
    })
}

/// Publishes `job` to at most `helpers` pool workers. The backlog is
/// capped at one queue entry per pool worker: the publishing caller
/// services every region itself, so pool pickup is an accelerator, never
/// a correctness need — and the cap pins the queue at its initial
/// capacity, keeping dispatch allocation-free even when a busy machine
/// leaves stale entries undrained.
fn dispatch(job: &Arc<JobShared>, helpers: usize) {
    let pool = pool();
    if helpers == 0 || pool.workers == 0 {
        return;
    }
    let n = {
        let mut queue = pool.shared.inject.lock().expect("injector");
        let n = helpers.min(pool.workers.saturating_sub(queue.len()));
        for _ in 0..n {
            queue.push_back(Arc::clone(job));
        }
        n
    };
    if n == 0 {
        return;
    }
    if n + 1 >= pool.workers {
        pool.shared.wake.notify_all();
    } else {
        for _ in 0..n {
            pool.shared.wake.notify_one();
        }
    }
}

/// Runs up to `min(par.threads, workers)` copies of `f` on the persistent
/// worker pool and returns their outputs in worker-id order, surfacing
/// worker panics as a structured [`ParError`] instead of unwinding.
///
/// See [`scoped_workers`] for the execution contract; this is the same
/// call with `Result` error reporting, for callers that want to attach
/// context before failing.
pub fn try_scoped_workers<R, F>(par: &Parallelism, workers: usize, f: F) -> Result<Vec<R>, ParError>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let n = par.threads.min(workers).max(1);
    if n == 1 {
        return match catch_unwind(AssertUnwindSafe(|| f(0))) {
            Ok(r) => Ok(vec![r]),
            Err(payload) => Err(ParError::WorkerPanicked {
                worker: 0,
                message: ParError::message_of(payload.as_ref()),
                payload,
            }),
        };
    }

    // One result slot per worker id; each id writes only its own slot,
    // and the caller reads them only after `pending` hits zero.
    let slots: Vec<UnsafeCell<Option<R>>> = (0..n).map(|_| UnsafeCell::new(None)).collect();
    struct Ctx<'a, R, F> {
        f: &'a F,
        slots: *const UnsafeCell<Option<R>>,
    }
    unsafe fn run_one<R, F: Fn(usize) -> R>(ctx: *const (), id: usize) {
        let ctx = unsafe { &*(ctx as *const Ctx<'_, R, F>) };
        let result = (ctx.f)(id);
        unsafe { *(*ctx.slots.add(id)).get() = Some(result) };
    }
    let ctx = Ctx {
        f: &f,
        slots: slots.as_ptr(),
    };
    let job = Arc::new(JobShared {
        run: AtomicUsize::new(run_one::<R, F> as RunFn as usize),
        ctx: AtomicPtr::new((&ctx as *const Ctx<'_, R, F>).cast_mut().cast()),
        workers: AtomicUsize::new(n),
        next: AtomicUsize::new(1),
        pending: AtomicUsize::new(n),
        panic: Mutex::new(None),
        done_lock: Mutex::new(()),
        done_cv: Condvar::new(),
    });
    dispatch(&job, n - 1);

    // The caller runs worker 0, then claims every id the pool has not
    // taken — it alone guarantees progress — and finally waits for the
    // ids that pool workers did claim.
    job.run_one(0);
    job.service();
    job.wait();

    if let Some((worker, payload)) = job.panic.lock().expect("panic slot").take() {
        return Err(ParError::WorkerPanicked {
            worker,
            message: ParError::message_of(payload.as_ref()),
            payload,
        });
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(worker, cell)| cell.into_inner().ok_or(ParError::MissingResult { worker }))
        .collect()
}

/// Runs up to `min(par.threads, workers)` copies of `f` on the persistent
/// worker pool and returns their outputs in worker-id order.
///
/// This is the borrow-friendly sibling of [`run_tasks`]: the closure may
/// capture references to caller-owned data (no `'static` bound), which is
/// what the hardware sweeps need — a worker borrows the decoded workload
/// and the candidate configurations while owning its per-worker scratch.
/// Callers distribute work themselves, typically by pulling indices from
/// a shared `AtomicUsize`, and must merge results by item index (never by
/// completion order) to stay deterministic.
///
/// Worker 0 runs on the calling thread, and the caller claims every
/// worker id the pool does not take, so progress never depends on the
/// scheduler; with `par.threads <= 1` or `workers <= 1` the single worker
/// runs inline and the call is the serial reference path. A panicking
/// worker propagates to the caller with its original payload; use
/// [`try_scoped_workers`] to receive a [`ParError`] instead.
pub fn scoped_workers<R, F>(par: &Parallelism, workers: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    match try_scoped_workers(par, workers, f) {
        Ok(out) => out,
        Err(ParError::WorkerPanicked { payload, .. }) => resume_unwind(payload),
        Err(e @ ParError::MissingResult { .. }) => panic!("{e}"),
    }
}

/// A reusable parallel region: one persistent [`JobShared`] allocation
/// that dispatches closures onto the shared worker pool with **zero
/// steady-state heap allocations**.
///
/// [`scoped_workers`] allocates a fresh job descriptor and result slots
/// per region — fine for coarse regions, but the solver's per-level
/// elimination fan-out sits inside an allocation-free hot loop (the
/// counting-allocator test in `orianna-solver` pins it). A `WorkerTeam`
/// amortizes the descriptor: regions after the first reuse the `Arc`, the
/// injector queue's retained capacity, and the pool's parked threads, so
/// the only per-region costs are atomics, a queue push, and a wakeup.
///
/// Unlike [`scoped_workers`] the closures return nothing: workers
/// communicate through caller-owned state (disjoint slices indexed by a
/// claimed item id), which is exactly the deterministic by-index merge
/// discipline the module docs require.
///
/// # Region protocol
///
/// `run` publishes a region by rewriting the idle descriptor
/// (`pending == 0`, cursor parked at [`IDLE_CURSOR`]) and release-storing
/// `next = 1` as the single "go" signal; the caller executes worker 0,
/// claims every id the pool does not take, waits for the rest, and parks
/// the cursor again. A stale pool worker waking up between regions claims
/// an id `>= workers` from the parked cursor and bails without touching
/// `ctx`; one waking during a later region joins that region, which is
/// sound because the claim's acquire pairs with the publish store.
pub struct WorkerTeam {
    job: Arc<JobShared>,
}

impl Default for WorkerTeam {
    fn default() -> Self {
        Self::new()
    }
}

/// Cloning yields a *fresh* team: regions are serialized per team via
/// `&mut self`, so sharing the descriptor across clones would let two
/// owners overlap regions. A team carries no state worth copying.
impl Clone for WorkerTeam {
    fn clone(&self) -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for WorkerTeam {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerTeam").finish_non_exhaustive()
    }
}

impl WorkerTeam {
    /// Creates a team with an idle job descriptor (the one allocation).
    pub fn new() -> Self {
        Self {
            job: Arc::new(JobShared::idle()),
        }
    }

    /// Runs `f(id)` for every worker id in `0..min(threads, workers)`,
    /// worker 0 on the calling thread. Allocation-free after the first
    /// few regions (pool spawn and injector growth are one-time costs).
    /// With one effective worker, `f(0)` runs inline — the serial path.
    ///
    /// `&mut self` serializes regions per team; a worker panic is
    /// re-raised on the caller after the region fully retires.
    pub fn run<F>(&mut self, threads: usize, workers: usize, f: &F)
    where
        F: Fn(usize) + Sync,
    {
        let n = threads.min(workers).max(1);
        if n == 1 {
            f(0);
            return;
        }
        unsafe fn run_ref<F: Fn(usize)>(ctx: *const (), id: usize) {
            let f = unsafe { &*(ctx as *const F) };
            f(id);
        }
        let job = &self.job;
        debug_assert_eq!(job.pending.load(Ordering::Acquire), 0, "region overlap");
        // Stage the region while the cursor is parked, then publish it
        // with the release store of `next = 1` (see JobShared docs).
        job.run
            .store(run_ref::<F> as RunFn as usize, Ordering::Relaxed);
        job.ctx
            .store((f as *const F).cast_mut().cast(), Ordering::Relaxed);
        job.workers.store(n, Ordering::Relaxed);
        job.pending.store(n, Ordering::Relaxed);
        job.next.store(1, Ordering::Release);
        dispatch(job, n - 1);
        job.run_one(0);
        job.service();
        job.wait();
        // Park the cursor before surfacing any panic so the team stays
        // reusable either way.
        job.next.store(IDLE_CURSOR, Ordering::Release);
        // Drop the guard before unwinding — an `if let` on the locked
        // temporary would hold (and poison) the mutex across the panic.
        let panicked = job.panic.lock().expect("panic slot").take();
        if let Some((_, payload)) = panicked {
            resume_unwind(payload);
        }
    }
}

type Task<R> = Box<dyn FnOnce() -> R + Send + 'static>;

/// Runs `tasks` with up to `threads` concurrent workers and returns their
/// results **in task order**. With `threads <= 1` (or a single task) the
/// tasks run inline on the calling thread, in order — the serial
/// reference. A panicking task is re-raised on the caller after all
/// remaining tasks complete.
pub fn run_tasks<R: Send + 'static>(threads: usize, tasks: Vec<Task<R>>) -> Vec<R> {
    let n = tasks.len();
    if threads <= 1 || n <= 1 {
        return tasks.into_iter().map(|t| t()).collect();
    }
    let queue: Mutex<VecDeque<(usize, Task<R>)>> =
        Mutex::new(tasks.into_iter().enumerate().collect());
    let workers = threads.min(n);
    let per_worker = scoped_workers(&Parallelism::with_threads(workers), workers, |_| {
        // Drain the shared queue; a panicking task is caught so the
        // remaining tasks still complete, mirroring the historic
        // channel-pool semantics.
        let mut done: Vec<(usize, thread::Result<R>)> = Vec::new();
        loop {
            let next = queue.lock().expect("task queue").pop_front();
            let Some((idx, task)) = next else { break };
            done.push((idx, catch_unwind(AssertUnwindSafe(task))));
        }
        done
    });

    let mut slots: Vec<Option<thread::Result<R>>> = (0..n).map(|_| None).collect();
    for (idx, outcome) in per_worker.into_iter().flatten() {
        slots[idx] = Some(outcome);
    }
    let mut out = Vec::with_capacity(n);
    let mut panic: Option<Box<dyn Any + Send>> = None;
    for slot in slots {
        match slot.expect("every task reports exactly once") {
            Ok(r) => out.push(r),
            Err(p) => panic = Some(p),
        }
    }
    if let Some(p) = panic {
        resume_unwind(p);
    }
    out
}

/// Convenience: maps `items` through `f` in parallel, preserving order.
/// `f` must be `Sync` (it is shared across workers) and the items are
/// moved into the tasks.
pub fn par_map<T, R, F>(par: &Parallelism, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send + 'static,
    R: Send + 'static,
    F: Fn(T) -> R + Send + Sync + 'static,
{
    if !par.is_parallel() || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let f = Arc::new(f);
    let tasks: Vec<Box<dyn FnOnce() -> R + Send>> = items
        .into_iter()
        .map(|item| {
            let f = Arc::clone(&f);
            Box::new(move || f(item)) as Box<dyn FnOnce() -> R + Send>
        })
        .collect();
    run_tasks(par.threads, tasks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_arrive_in_task_order() {
        for threads in [1, 2, 4, 8] {
            let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..37usize)
                .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
                .collect();
            let out = run_tasks(threads, tasks);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn tasks_actually_run_on_multiple_threads() {
        // With enough tasks that block until a sibling joins, at least two
        // distinct threads must participate (pool has ≥ 8 workers).
        let seen = Arc::new(Mutex::new(std::collections::HashSet::new()));
        let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..16)
            .map(|_| {
                let seen = Arc::clone(&seen);
                Box::new(move || {
                    seen.lock().unwrap().insert(thread::current().id());
                    thread::sleep(std::time::Duration::from_millis(2));
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        run_tasks(4, tasks);
        assert!(
            seen.lock().unwrap().len() >= 2,
            "expected cross-thread execution"
        );
    }

    #[test]
    fn pool_threads_persist_across_calls() {
        // Two back-to-back parallel regions must reuse pool threads
        // rather than spawning fresh ones: the set of thread ids seen by
        // helper workers (id > 0) in the second call may not contain a
        // thread that was spawned after the first call completed. We
        // can't observe spawn times directly, so assert the weaker —but
        // still spawn-detecting— property that repeated regions only ever
        // see pool-named threads.
        let caller = thread::current().id();
        for _ in 0..3 {
            let names = scoped_workers(&Parallelism::with_threads(4), 4, |_| {
                // The caller legitimately claims helper ids the pool was
                // too slow to take; only off-caller work must be on pool
                // threads.
                if thread::current().id() == caller {
                    None
                } else {
                    thread::current().name().map(str::to_string)
                }
            });
            for name in names.into_iter().flatten() {
                assert!(
                    name.starts_with("orianna-par-"),
                    "helper ran on non-pool thread {name}"
                );
            }
        }
    }

    #[test]
    fn par_map_matches_serial_map() {
        let items: Vec<u64> = (0..100).collect();
        let serial = par_map(&Parallelism::serial(), items.clone(), |x| {
            x.wrapping_mul(31) ^ 7
        });
        let parallel = par_map(&Parallelism::with_threads(4), items, |x| {
            x.wrapping_mul(31) ^ 7
        });
        assert_eq!(serial, parallel);
    }

    #[test]
    fn counts_every_task_exactly_once() {
        let counter = Arc::new(AtomicUsize::new(0));
        let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..257)
            .map(|_| {
                let c = Arc::clone(&counter);
                Box::new(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        run_tasks(8, tasks);
        assert_eq!(counter.load(Ordering::SeqCst), 257);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn task_panics_propagate_to_caller() {
        let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..4)
            .map(|i| {
                Box::new(move || {
                    if i == 2 {
                        panic!("boom");
                    }
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        run_tasks(4, tasks);
    }

    #[test]
    fn parallelism_defaults_and_clamping() {
        assert!(Parallelism::default().threads >= 1);
        assert!(Parallelism::default().is_auto());
        assert!(
            Parallelism::default().threads <= available_threads(),
            "default must clamp to available cores"
        );
        assert_eq!(Parallelism::with_threads(0).threads, 1);
        assert!(!Parallelism::serial().is_parallel());
        assert!(Parallelism::with_threads(4).is_parallel());
        assert!(!Parallelism::with_threads(4).is_auto());
        assert_eq!(
            Parallelism::auto_with_threads(usize::MAX).threads,
            available_threads(),
            "auto clamps to available cores"
        );
    }

    #[test]
    fn orianna_threads_parsing() {
        // The pure parser: valid positive integers clamp to ≥ 1, anything
        // malformed is `None` so the auto (all-cores) default applies
        // instead of a silently re-parsed garbage value.
        assert_eq!(parse_threads("3"), Some(3));
        assert_eq!(parse_threads(" 5 "), Some(5), "whitespace is trimmed");
        assert_eq!(parse_threads("0"), Some(1), "zero clamps to one");
        assert_eq!(parse_threads("not-a-number"), None);
        assert_eq!(parse_threads(""), None);
        assert_eq!(parse_threads("-2"), None, "negatives fall back to auto");
        assert_eq!(parse_threads("2.5"), None, "fractions fall back to auto");
    }

    #[test]
    fn orianna_par_threshold_parsing() {
        assert_eq!(parse_threshold("250000"), Some(250_000));
        assert_eq!(parse_threshold(" 0 "), Some(0));
        assert_eq!(parse_threshold("lots"), None, "garbage keeps the default");
        assert_eq!(parse_threshold("-1"), None);
        assert!(auto_threshold() >= 1 || auto_threshold() == 0);
    }

    #[test]
    fn env_overrides_are_read_once() {
        // The environment is parsed a single time per process; later
        // mutations must not change the configuration mid-run (the knob
        // used to be re-read on every `Parallelism::default()`, i.e. once
        // per solve). Whatever the ambient value was at first read, the
        // cached result is stable against subsequent env churn.
        let before = env_threads();
        let threshold_before = auto_threshold();
        std::env::set_var("ORIANNA_THREADS", "7");
        std::env::set_var("ORIANNA_PAR_THRESHOLD", "12345");
        assert_eq!(env_threads(), before, "thread override is cached");
        assert_eq!(
            auto_threshold(),
            threshold_before,
            "threshold override is cached"
        );
        std::env::remove_var("ORIANNA_THREADS");
        std::env::remove_var("ORIANNA_PAR_THRESHOLD");
        assert_eq!(env_threads(), before);
        // And the default stays well-formed no matter what was cached.
        assert!(Parallelism::default().threads >= 1);
        assert!(Parallelism::default().threads <= available_threads());
    }

    #[test]
    fn auto_mode_gates_small_regions_serial() {
        let auto = Parallelism {
            threads: 8,
            auto: true,
        };
        let t = auto_threshold();
        assert_eq!(auto.effective_threads(0), 1);
        assert_eq!(auto.effective_threads(t.saturating_sub(1)), 1);
        assert!(auto.effective_threads(t) >= 2, "at-threshold work fans out");
        assert_eq!(
            auto.effective_threads(u64::MAX / 2),
            8,
            "huge regions get every configured thread"
        );
        assert!(!auto.gate(0).is_parallel());
        assert!(auto.gate(u64::MAX / 2).is_parallel());
        // Non-auto configurations are never gated.
        let fixed = Parallelism::with_threads(4);
        assert_eq!(fixed.effective_threads(0), 4);
    }

    #[test]
    fn scoped_workers_runs_every_worker_once() {
        for threads in [1usize, 2, 4, 8] {
            let par = Parallelism::with_threads(threads);
            let out = scoped_workers(&par, 6, |id| id * 10);
            let expect: Vec<usize> = (0..threads.min(6)).map(|id| id * 10).collect();
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    #[test]
    fn scoped_workers_drain_shared_counter_deterministically() {
        // The canonical usage: workers pull item indices from a shared
        // counter and the caller merges by index. Every item is processed
        // exactly once at any thread count.
        let items: Vec<u64> = (0..97).map(|i| i * 3 + 1).collect();
        for threads in [1usize, 2, 4, 8] {
            let next = AtomicUsize::new(0);
            let per_worker =
                scoped_workers(&Parallelism::with_threads(threads), items.len(), |_| {
                    let mut done = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        done.push((i, items[i] * items[i]));
                    }
                    done
                });
            let mut merged = vec![0u64; items.len()];
            let mut count = 0usize;
            for chunk in per_worker {
                for (i, v) in chunk {
                    merged[i] = v;
                    count += 1;
                }
            }
            assert_eq!(count, items.len(), "threads={threads}");
            for (i, item) in items.iter().enumerate() {
                assert_eq!(merged[i], item * item);
            }
        }
    }

    #[test]
    #[should_panic(expected = "scoped boom")]
    fn scoped_worker_panics_propagate() {
        scoped_workers(&Parallelism::with_threads(4), 4, |id| {
            if id == 2 {
                panic!("scoped boom");
            }
            id
        });
    }

    #[test]
    fn try_scoped_workers_surfaces_structured_panic() {
        let err = try_scoped_workers(&Parallelism::with_threads(4), 4, |id| {
            if id == 2 {
                panic!("structured boom {id}");
            }
            id
        })
        .expect_err("worker 2 panicked");
        match err {
            ParError::WorkerPanicked {
                worker, message, ..
            } => {
                assert_eq!(worker, 2);
                assert!(message.contains("structured boom"), "message={message}");
            }
            other => panic!("unexpected error {other}"),
        }
        // Display carries the worker id and message for logs.
        let err = try_scoped_workers(&Parallelism::serial(), 1, |_| -> usize {
            panic!("inline boom")
        })
        .expect_err("inline worker panicked");
        assert!(err.to_string().contains("worker 0"));
        assert!(err.to_string().contains("inline boom"));
    }

    #[test]
    fn worker_team_runs_every_id_across_reused_regions() {
        let mut team = WorkerTeam::new();
        for round in 0..5usize {
            for n in [1usize, 2, 4, 8] {
                let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
                team.run(n, n, &|id: usize| {
                    hits[id].fetch_add(1, Ordering::Relaxed);
                });
                for (id, h) in hits.iter().enumerate() {
                    assert_eq!(
                        h.load(Ordering::Relaxed),
                        1,
                        "round {round} n {n} id {id} ran exactly once"
                    );
                }
            }
        }
    }

    #[test]
    fn worker_team_claim_cursor_merges_by_index() {
        // The canonical solver usage: workers drain a shared item cursor
        // and write disjoint slots; every item is taken exactly once.
        let mut team = WorkerTeam::new();
        let items = 153usize;
        for threads in [2usize, 4, 8] {
            let cursor = AtomicUsize::new(0);
            let out: Vec<AtomicUsize> = (0..items).map(|_| AtomicUsize::new(0)).collect();
            team.run(threads, items, &|_id: usize| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items {
                    break;
                }
                out[i].fetch_add(i * 7 + 1, Ordering::Relaxed);
            });
            for (i, o) in out.iter().enumerate() {
                assert_eq!(o.load(Ordering::Relaxed), i * 7 + 1, "threads={threads}");
            }
        }
    }

    #[test]
    fn worker_team_survives_panicking_region() {
        let mut team = WorkerTeam::new();
        for round in 0..3 {
            let r = catch_unwind(AssertUnwindSafe(|| {
                team.run(4, 4, &|id: usize| {
                    if id == 1 {
                        panic!("team boom {round}");
                    }
                });
            }));
            assert!(r.is_err(), "round {round}");
            // The very next region on the same descriptor must work.
            let sum = AtomicUsize::new(0);
            team.run(4, 4, &|id: usize| {
                sum.fetch_add(id + 1, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), 10);
        }
    }

    #[test]
    fn try_scoped_workers_recovers_after_panic() {
        // The pool must stay serviceable after a panicking region: the
        // panic is contained to the job, not the worker thread.
        for round in 0..4 {
            let result = try_scoped_workers(&Parallelism::with_threads(4), 4, |id| {
                if id == 1 {
                    panic!("round {round}");
                }
                id * 2
            });
            assert!(result.is_err(), "round {round}");
        }
        let ok = scoped_workers(&Parallelism::with_threads(4), 4, |id| id + 1);
        assert_eq!(ok, vec![1, 2, 3, 4]);
    }
}
