//! # orianna-math
//!
//! Dense linear-algebra substrate for the ORIANNA framework.
//!
//! ORIANNA (ASPLOS'24) lowers optimization-based robotic algorithms to a
//! small set of matrix operations (Tbl. 3 of the paper) and solves the
//! resulting linear systems with incremental partial QR decompositions and
//! back-substitutions (Fig. 5/6). This crate provides those kernels:
//!
//! * [`Mat`] / [`Vec64`] — small dense row-major matrices and vectors,
//! * [`qr`] — full and partial Householder QR, plus Givens-rotation QR as
//!   used by the hardware template,
//! * [`triangular`] — forward/back substitution,
//! * [`solve`] — dense least-squares helpers used as a ground-truth oracle
//!   in tests,
//! * [`macs`] — multiply–accumulate counting, used to reproduce the paper's
//!   Sec. 4.3 arithmetic-saving claims and to drive baseline cost models,
//! * [`par`] — the [`Parallelism`] configuration and the shared worker
//!   pool behind every parallel path in the workspace,
//! * [`scratch`] — per-thread reusable buffers so the hot QR/matmul
//!   kernels allocate no per-operation temporaries,
//! * [`simd`] — runtime feature detection for the AVX f64×4 panel
//!   microkernels (bitwise identical to their scalar fallbacks).
//!
//! All kernels are written from scratch on `f64`; no external linear algebra
//! crates are used.
//!
//! ## Example
//!
//! ```
//! use orianna_math::{Mat, Vec64};
//!
//! let a = Mat::from_rows(&[&[2.0, 0.0], &[0.0, 3.0]]);
//! let x = Vec64::from_slice(&[1.0, 1.0]);
//! let y = a.mul_vec(&x);
//! assert_eq!(y.as_slice(), &[2.0, 3.0]);
//! ```

pub mod macs;
pub mod mat;
pub mod panel;
pub mod par;
pub mod qr;
pub mod scratch;
pub mod simd;
pub mod solve;
pub mod triangular;

pub use mat::{Mat, Vec64};
pub use par::Parallelism;
pub use qr::{givens_qr, givens_qr_full, householder_qr, partial_qr, QrFactors};
pub use solve::{least_squares, solve_upper_triangular};

/// Comparison tolerance used throughout the test-suite of the workspace.
pub const EPS: f64 = 1e-9;

/// Returns `true` when two floats agree to within `tol` absolutely or
/// relatively (whichever is looser), which is robust for both tiny and
/// large magnitudes.
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let diff = (a - b).abs();
    diff <= tol || diff <= tol * a.abs().max(b.abs())
}
