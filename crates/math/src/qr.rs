//! QR decompositions.
//!
//! Factor-graph inference (Fig. 5 of the paper) eliminates one variable at a
//! time by running a *partial* QR decomposition on a small dense matrix
//! gathered from the factors adjacent to that variable. This module provides:
//!
//! * [`householder_qr`] — full QR via Householder reflections (reference),
//! * [`partial_qr`] — triangularizes only the first `k` columns, which is
//!   exactly the per-variable elimination step,
//! * [`givens_qr`] — Givens-rotation QR matching the hardware QR template
//!   (prior factor-graph accelerators use Givens arrays); also reports the
//!   number of rotations applied, which drives the unit latency model.

use crate::macs;
use crate::mat::Mat;
use crate::panel;
use crate::scratch;

/// The result of a full QR decomposition `A = Q · R`.
#[derive(Debug, Clone)]
pub struct QrFactors {
    /// Orthogonal factor, `m×m`.
    pub q: Mat,
    /// Upper-triangular (trapezoidal) factor, `m×n`.
    pub r: Mat,
}

/// Full Householder QR of `a` (`m×n`, any shape).
///
/// # Example
/// ```
/// use orianna_math::{householder_qr, Mat};
/// let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
/// let f = householder_qr(&a);
/// let back = f.q.mul_mat(&f.r);
/// assert!((&back - &a).norm() < 1e-12);
/// assert!(f.r.is_upper_triangular(1e-12));
/// ```
pub fn householder_qr(a: &Mat) -> QrFactors {
    let (m, n) = a.shape();
    let mut r = a.clone();
    let mut q = Mat::identity(m);
    scratch::with_buf(m, |vbuf| {
        for k in 0..n.min(m.saturating_sub(1)) {
            let v = &mut vbuf[..m - k];
            if panel::householder_vector(r.as_slice(), m, n, k, v) {
                panel::reflect_left(r.as_mut_slice(), m, n, v, k);
                panel::reflect_left(q.as_mut_slice(), m, m, v, k);
            }
        }
    });
    // q currently accumulates Hk ... H1; Q = (Hk ... H1)^T.
    QrFactors {
        q: q.transpose(),
        r: zero_below_diag(r),
    }
}

/// Partially triangularizes `a`: after the call, the first
/// `k.min(m-1)` columns are zero below the diagonal. Returns the updated
/// matrix (the paper's `Ā` after partial QR in Fig. 5).
///
/// For `k >= n` this is a full triangularization.
pub fn partial_qr(a: &Mat, k: usize) -> Mat {
    let (m, n) = a.shape();
    let mut r = a.clone();
    let limit = k.min(n).min(m.saturating_sub(1));
    scratch::with_buf(m, |vbuf| {
        for col in 0..limit {
            let v = &mut vbuf[..m - col];
            if panel::householder_vector(r.as_slice(), m, n, col, v) {
                panel::reflect_left(r.as_mut_slice(), m, n, v, col);
            }
            // Explicitly clean the annihilated column to avoid residue.
            for row in col + 1..m {
                r[(row, col)] = 0.0;
            }
        }
    });
    r
}

/// Givens-rotation QR. Returns the triangular factor and the number of
/// rotations performed (the hardware QR unit's latency is proportional to
/// this count).
pub fn givens_qr(a: &Mat) -> (Mat, usize) {
    let (m, n) = a.shape();
    let mut r = a.clone();
    let rotations = panel::givens_triangularize(r.as_mut_slice(), m, n);
    (r, rotations)
}

/// Givens-rotation QR with an explicitly accumulated orthogonal factor.
///
/// Identical rotation schedule to [`givens_qr`], but each rotation is also
/// applied to an accumulator so the full `A = Q · R` factorization is
/// recovered. Used by the conformance harness to check the hardware QR
/// template against the orthogonality/reconstruction properties; the
/// latency-model rotation count is returned as well.
///
/// # Example
/// ```
/// use orianna_math::{givens_qr_full, Mat};
/// let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
/// let (f, _rotations) = givens_qr_full(&a);
/// assert!((&f.q.mul_mat(&f.r) - &a).norm() < 1e-12);
/// ```
pub fn givens_qr_full(a: &Mat) -> (QrFactors, usize) {
    let (m, n) = a.shape();
    let mut r = a.clone();
    let mut qt = Mat::identity(m);
    let mut rotations = 0;
    for col in 0..n.min(m) {
        for row in (col + 1..m).rev() {
            let x = r[(col, col)];
            let y = r[(row, col)];
            if y.abs() < 1e-300 {
                continue;
            }
            let (c, s) = givens(x, y);
            for j in col..n {
                let rc = r[(col, j)];
                let rr = r[(row, j)];
                r[(col, j)] = c * rc + s * rr;
                r[(row, j)] = -s * rc + c * rr;
            }
            // Accumulate Qᵀ = G_k ⋯ G_1 by applying the same row rotation.
            for j in 0..m {
                let qc = qt[(col, j)];
                let qr = qt[(row, j)];
                qt[(col, j)] = c * qc + s * qr;
                qt[(row, j)] = -s * qc + c * qr;
            }
            macs::record(4 * (n - col) + 4 * m);
            r[(row, col)] = 0.0;
            rotations += 1;
        }
    }
    (
        QrFactors {
            q: qt.transpose(),
            r,
        },
        rotations,
    )
}

/// Computes a Givens rotation `(c, s)` such that
/// `[c s; -s c]^T [x; y] = [r; 0]`.
fn givens(x: f64, y: f64) -> (f64, f64) {
    let h = x.hypot(y);
    macs::record(3);
    (x / h, y / h)
}

fn zero_below_diag(mut r: Mat) -> Mat {
    let (m, n) = r.shape();
    for row in 1..m {
        for col in 0..row.min(n) {
            r[(row, col)] = 0.0;
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_like(rows: usize, cols: usize, seed: u64) -> Mat {
        // Simple deterministic pseudo-random fill (xorshift).
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        let mut m = Mat::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = next();
            }
        }
        m
    }

    #[test]
    fn householder_reconstructs() {
        for (rows, cols, seed) in [(4, 4, 1), (6, 3, 2), (3, 5, 3), (8, 8, 4)] {
            let a = random_like(rows, cols, seed);
            let f = householder_qr(&a);
            assert!((&f.q.mul_mat(&f.r) - &a).norm() < 1e-10, "{rows}x{cols}");
            assert!(f.r.is_upper_triangular(1e-10));
            // Q orthogonal.
            let qtq = f.q.transpose().mul_mat(&f.q);
            assert!((&qtq - &Mat::identity(rows)).norm() < 1e-10);
        }
    }

    #[test]
    fn householder_preserves_column_norms() {
        let a = random_like(5, 3, 7);
        let f = householder_qr(&a);
        // |A e_j| == |R e_j| since Q is orthogonal.
        for c in 0..3 {
            let an: f64 = (0..5).map(|r| a[(r, c)] * a[(r, c)]).sum::<f64>().sqrt();
            let rn: f64 = (0..5)
                .map(|r| f.r[(r, c)] * f.r[(r, c)])
                .sum::<f64>()
                .sqrt();
            assert!((an - rn).abs() < 1e-10);
        }
    }

    #[test]
    fn partial_qr_zeroes_leading_columns_only() {
        let a = random_like(6, 5, 5);
        let k = 2;
        let r = partial_qr(&a, k);
        for col in 0..k {
            for row in col + 1..6 {
                assert!(r[(row, col)].abs() < 1e-12);
            }
        }
        // Column norms of the whole matrix preserved (orthogonal transform).
        for c in 0..5 {
            let an: f64 = (0..6).map(|r2| a[(r2, c)] * a[(r2, c)]).sum::<f64>().sqrt();
            let rn: f64 = (0..6).map(|r2| r[(r2, c)] * r[(r2, c)]).sum::<f64>().sqrt();
            assert!((an - rn).abs() < 1e-10, "col {c}");
        }
    }

    #[test]
    fn partial_qr_full_when_k_large() {
        let a = random_like(5, 3, 9);
        let r = partial_qr(&a, 10);
        assert!(r.is_upper_triangular(1e-10));
    }

    #[test]
    fn givens_matches_householder_up_to_sign() {
        let a = random_like(5, 4, 11);
        let (rg, rotations) = givens_qr(&a);
        let rh = householder_qr(&a).r;
        assert!(rotations > 0);
        assert!(rg.is_upper_triangular(1e-10));
        // Rows of R are unique up to sign; compare absolute values.
        for r in 0..4 {
            for c in 0..4 {
                assert!(
                    (rg[(r, c)].abs() - rh[(r, c)].abs()).abs() < 1e-9,
                    "({r},{c}): {} vs {}",
                    rg[(r, c)],
                    rh[(r, c)]
                );
            }
        }
    }

    #[test]
    fn givens_rotation_count_matches_nonzero_pattern() {
        // A dense 4x3 requires 3+2+1 annihilations below the diagonal plus
        // the fourth row in each column: rows below diag per column are
        // (m-1-col) = 3, 2, 1 → wait m=4,n=3: col0 → rows 1..4 (3), col1 →
        // rows 2..4 (2), col2 → rows 3..4 (1) → 6 total.
        let a = random_like(4, 3, 13);
        let (_, rotations) = givens_qr(&a);
        assert_eq!(rotations, 6);
    }

    #[test]
    fn qr_of_already_triangular_is_noop() {
        let a = Mat::from_rows(&[&[2.0, 1.0], &[0.0, 3.0]]);
        let f = householder_qr(&a);
        assert!((&f.r - &a).norm() < 1e-12);
        let (rg, rotations) = givens_qr(&a);
        assert_eq!(rotations, 0);
        assert!((&rg - &a).norm() < 1e-12);
    }
}
