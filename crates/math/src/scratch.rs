//! Per-thread scratch buffers for the hot numeric kernels.
//!
//! The parallel linearize→eliminate path runs thousands of small QR
//! decompositions per iteration; allocating a fresh Householder vector
//! for every column of every factor would put the allocator on the
//! critical path of every worker thread. Instead each thread keeps a
//! small pool of reusable `f64` buffers: [`with_buf`] hands out a
//! zero-initialized slice and returns it to the pool afterwards, so
//! steady-state kernel execution performs no heap allocation for
//! temporaries. Buffers are thread-local — workers never contend.

use std::cell::RefCell;

thread_local! {
    static POOL: RefCell<Vec<Vec<f64>>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with a zeroed scratch slice of length `len` drawn from the
/// calling thread's buffer pool. Re-entrant: nested calls receive
/// distinct buffers.
pub fn with_buf<R>(len: usize, f: impl FnOnce(&mut [f64]) -> R) -> R {
    let mut buf = POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default();
    buf.clear();
    buf.resize(len, 0.0);
    let out = f(&mut buf);
    POOL.with(|p| {
        let mut pool = p.borrow_mut();
        // Bound the per-thread pool so pathological sizes don't pin memory.
        if pool.len() < 8 {
            pool.push(buf);
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_arrive_zeroed() {
        with_buf(16, |b| {
            assert!(b.iter().all(|&x| x == 0.0));
            b.fill(3.5);
        });
        // The dirtied buffer is re-zeroed on reuse.
        with_buf(16, |b| assert!(b.iter().all(|&x| x == 0.0)));
    }

    #[test]
    fn nested_calls_get_distinct_buffers() {
        with_buf(4, |outer| {
            outer.fill(1.0);
            with_buf(4, |inner| {
                inner.fill(2.0);
                assert!(outer.iter().all(|&x| x == 1.0));
            });
            assert!(outer.iter().all(|&x| x == 1.0));
        });
    }

    #[test]
    fn handles_zero_length() {
        with_buf(0, |b| assert!(b.is_empty()));
    }
}
