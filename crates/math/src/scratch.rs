//! Per-thread scratch buffers for the hot numeric kernels.
//!
//! The parallel linearize→eliminate path runs thousands of small QR
//! decompositions per iteration; allocating a fresh Householder vector
//! for every column of every factor would put the allocator on the
//! critical path of every worker thread. Instead each thread keeps a
//! small pool of reusable `f64` buffers: [`with_buf`] hands out a
//! zero-initialized slice and returns it to the pool afterwards, so
//! steady-state kernel execution performs no heap allocation for
//! temporaries. Buffers are thread-local — workers never contend.

use std::cell::RefCell;

thread_local! {
    static POOL: RefCell<Vec<Vec<f64>>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with a zeroed scratch slice of length `len` drawn from the
/// calling thread's buffer pool. Re-entrant: nested calls receive
/// distinct buffers.
///
/// Size-aware: the pool hands out the **smallest** pooled buffer whose
/// capacity already fits `len` (best fit), falling back to the largest
/// buffer (which then grows once) when none fits. Alternating large/small
/// requests therefore stop thrashing the pool with reallocations — the big
/// buffers keep serving big requests and the small ones the small requests.
pub fn with_buf<R>(len: usize, f: impl FnOnce(&mut [f64]) -> R) -> R {
    let mut buf = POOL
        .with(|p| {
            let mut pool = p.borrow_mut();
            let mut best_fit: Option<(usize, usize)> = None;
            let mut largest: Option<(usize, usize)> = None;
            for (i, b) in pool.iter().enumerate() {
                let cap = b.capacity();
                if cap >= len && best_fit.is_none_or(|(_, c)| cap < c) {
                    best_fit = Some((i, cap));
                }
                if largest.is_none_or(|(_, c)| cap > c) {
                    largest = Some((i, cap));
                }
            }
            best_fit.or(largest).map(|(i, _)| pool.swap_remove(i))
        })
        .unwrap_or_default();
    // Zeroing audit: recycled buffers come back dirty from their previous
    // user, so the clear + resize pair below is what re-establishes the
    // documented all-zero contract — `clear` drops the stale length to 0
    // and `resize` writes 0.0 into every handed-out element, including
    // when a larger best-fit buffer serves a smaller request. Callers that
    // accumulate into the slice (the panel gather paths, Householder
    // vbufs) rely on this; the debug assert keeps the contract honest if
    // the pooling strategy ever changes.
    buf.clear();
    buf.resize(len, 0.0);
    debug_assert!(
        buf.iter().all(|&x| x == 0.0),
        "scratch pool handed out a non-zeroed buffer"
    );
    let out = f(&mut buf);
    POOL.with(|p| {
        let mut pool = p.borrow_mut();
        // Bound the per-thread pool so pathological sizes don't pin memory.
        if pool.len() < 8 {
            pool.push(buf);
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_arrive_zeroed() {
        with_buf(16, |b| {
            assert!(b.iter().all(|&x| x == 0.0));
            b.fill(3.5);
        });
        // The dirtied buffer is re-zeroed on reuse.
        with_buf(16, |b| assert!(b.iter().all(|&x| x == 0.0)));
    }

    #[test]
    fn nested_calls_get_distinct_buffers() {
        with_buf(4, |outer| {
            outer.fill(1.0);
            with_buf(4, |inner| {
                inner.fill(2.0);
                assert!(outer.iter().all(|&x| x == 1.0));
            });
            assert!(outer.iter().all(|&x| x == 1.0));
        });
    }

    #[test]
    fn handles_zero_length() {
        with_buf(0, |b| assert!(b.is_empty()));
    }

    #[test]
    fn best_fit_pops_smallest_buffer_that_fits() {
        POOL.with(|p| p.borrow_mut().clear());
        // Seed the pool with one small (8) and one large (1024) buffer.
        with_buf(1024, |_| with_buf(8, |_| {}));
        // A 4-element request is served by the small buffer; the large one
        // stays pooled at full capacity for the next large request.
        with_buf(4, |_| {
            POOL.with(|p| {
                let pool = p.borrow();
                assert_eq!(pool.len(), 1);
                assert!(pool[0].capacity() >= 1024);
            });
        });
    }

    #[test]
    fn dirty_buffers_are_rezeroed_across_size_classes() {
        // Regression test for the zeroing contract on the best-fit path:
        // a large buffer dirtied by a big request must hand out an
        // all-zero prefix when it later serves a *smaller* request (its
        // stale tail beyond `len` is invisible but its prefix is not).
        POOL.with(|p| p.borrow_mut().clear());
        with_buf(256, |b| b.fill(7.25));
        with_buf(100, |b| {
            assert_eq!(b.len(), 100);
            assert!(b.iter().all(|&x| x == 0.0), "stale prefix leaked");
            b.fill(-1.0);
        });
        // And growing back to the original size must not resurrect the
        // dirtied tail either.
        with_buf(256, |b| assert!(b.iter().all(|&x| x == 0.0)));
    }

    #[test]
    fn oversized_request_grows_the_largest_buffer() {
        POOL.with(|p| p.borrow_mut().clear());
        with_buf(16, |b| b.fill(1.0));
        with_buf(32, |b| {
            assert_eq!(b.len(), 32);
            assert!(b.iter().all(|&x| x == 0.0));
        });
    }
}
