//! Runtime SIMD feature detection for the panel microkernels.
//!
//! The f64×4 kernels in [`crate::panel`] are written with explicit AVX
//! intrinsics (separate multiply and add — **never** FMA, which would
//! change rounding) so that each output element performs exactly the same
//! IEEE operations in exactly the same order as the scalar reference.
//! That makes them *bitwise identical* to the scalar fallbacks, and the
//! dispatch here is therefore purely a performance decision:
//!
//! * on x86-64 the AVX path is used when the CPU reports the feature
//!   (`is_x86_feature_detected!`), checked once and cached;
//! * `ORIANNA_NO_SIMD=1` (any non-empty value other than `0`) forces the
//!   scalar fallbacks — the CI matrix runs the whole suite this way so the
//!   fallback path stays green;
//! * every other architecture always takes the scalar path.

use std::sync::OnceLock;

/// Whether the AVX f64×4 kernels are active: compiled in for this
/// architecture, reported by the CPU, and not disabled via
/// `ORIANNA_NO_SIMD`. Detected once per process and cached.
pub fn enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| detect_avx() && !disabled_by_env())
}

/// `ORIANNA_NO_SIMD` set to any non-empty value except `0` forces the
/// scalar fallbacks.
fn disabled_by_env() -> bool {
    std::env::var("ORIANNA_NO_SIMD").is_ok_and(|raw| {
        let v = raw.trim();
        !v.is_empty() && v != "0"
    })
}

#[cfg(target_arch = "x86_64")]
fn detect_avx() -> bool {
    std::arch::is_x86_feature_detected!("avx")
}

#[cfg(not(target_arch = "x86_64"))]
fn detect_avx() -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_is_stable() {
        // Whatever the answer is on this machine, it must not flip
        // between queries (consumers cache per-call, not per-element).
        let first = enabled();
        for _ in 0..3 {
            assert_eq!(enabled(), first);
        }
    }
}
