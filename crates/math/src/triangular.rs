//! Triangular-system substitution kernels.
//!
//! Back-substitution is the final stage of factor-graph inference (Fig. 6 of
//! the paper): once variable elimination has produced an upper-triangular
//! system, the solution Δ is recovered root-first. The hardware
//! back-substitution unit's latency model counts one MAC per eliminated
//! entry, mirroring these loops.

use crate::macs;
use crate::mat::{Mat, Vec64};

/// Solves `U x = b` for upper-triangular `U`.
///
/// Returns `None` when a diagonal entry is numerically zero.
///
/// # Panics
/// Panics if `U` is not square or `b` has the wrong length.
pub fn back_substitute(u: &Mat, b: &Vec64) -> Option<Vec64> {
    let n = u.rows();
    assert_eq!(u.cols(), n, "back_substitute requires a square matrix");
    assert_eq!(b.len(), n, "rhs length mismatch");
    let mut x = Vec64::zeros(n);
    for i in (0..n).rev() {
        let mut acc = b[i];
        for j in i + 1..n {
            acc -= u[(i, j)] * x[j];
        }
        macs::record(n - i);
        let d = u[(i, i)];
        if d.abs() < 1e-13 {
            return None;
        }
        x[i] = acc / d;
    }
    Some(x)
}

/// Solves `L x = b` for lower-triangular `L`.
///
/// Returns `None` when a diagonal entry is numerically zero.
///
/// # Panics
/// Panics if `L` is not square or `b` has the wrong length.
pub fn forward_substitute(l: &Mat, b: &Vec64) -> Option<Vec64> {
    let n = l.rows();
    assert_eq!(l.cols(), n, "forward_substitute requires a square matrix");
    assert_eq!(b.len(), n, "rhs length mismatch");
    let mut x = Vec64::zeros(n);
    for i in 0..n {
        let mut acc = b[i];
        for j in 0..i {
            acc -= l[(i, j)] * x[j];
        }
        macs::record(i + 1);
        let d = l[(i, i)];
        if d.abs() < 1e-13 {
            return None;
        }
        x[i] = acc / d;
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn back_substitution_known() {
        let u = Mat::from_rows(&[&[2.0, 1.0], &[0.0, 4.0]]);
        let x_true = Vec64::from_slice(&[1.0, 2.0]);
        let b = u.mul_vec(&x_true);
        let x = back_substitute(&u, &b).unwrap();
        assert!((&x - &x_true).norm() < 1e-12);
    }

    #[test]
    fn forward_substitution_known() {
        let l = Mat::from_rows(&[&[3.0, 0.0], &[1.0, 2.0]]);
        let x_true = Vec64::from_slice(&[-1.0, 5.0]);
        let b = l.mul_vec(&x_true);
        let x = forward_substitute(&l, &b).unwrap();
        assert!((&x - &x_true).norm() < 1e-12);
    }

    #[test]
    fn singular_diagonal_is_rejected() {
        let u = Mat::from_rows(&[&[1.0, 1.0], &[0.0, 0.0]]);
        assert!(back_substitute(&u, &Vec64::zeros(2)).is_none());
        let l = Mat::from_rows(&[&[0.0, 0.0], &[1.0, 1.0]]);
        assert!(forward_substitute(&l, &Vec64::zeros(2)).is_none());
    }

    #[test]
    fn back_substitution_matches_dense_solve() {
        let u = Mat::from_rows(&[&[3.0, -1.0, 2.0], &[0.0, 2.0, 0.5], &[0.0, 0.0, 1.5]]);
        let b = Vec64::from_slice(&[1.0, -2.0, 3.0]);
        let x1 = back_substitute(&u, &b).unwrap();
        let x2 = u.solve_dense(&b).unwrap();
        assert!((&x1 - &x2).norm() < 1e-12);
    }
}
