//! Dense least-squares reference solvers.
//!
//! The factor-graph elimination path (the paper's contribution) is checked
//! in tests against these straightforward dense solvers: the two must agree
//! on every linear system because variable elimination is algebraically a
//! QR factorization of the full Jacobian.

use crate::mat::{Mat, Vec64};
use crate::qr::householder_qr;
use crate::triangular::back_substitute;

/// Solves `U x = b` for upper-triangular `U`; convenience re-export of
/// [`back_substitute`].
pub fn solve_upper_triangular(u: &Mat, b: &Vec64) -> Option<Vec64> {
    back_substitute(u, b)
}

/// Solves the (possibly overdetermined) least-squares problem
/// `min_x |A x − b|²` via QR decomposition.
///
/// Returns `None` when `A` is rank-deficient.
///
/// # Panics
/// Panics when `A` has fewer rows than columns or the RHS length mismatches.
pub fn least_squares(a: &Mat, b: &Vec64) -> Option<Vec64> {
    let (m, n) = a.shape();
    assert!(m >= n, "least_squares requires rows >= cols");
    assert_eq!(b.len(), m, "rhs length mismatch");
    let f = householder_qr(a);
    // R x = Q^T b (top n rows).
    let qtb = f.q.transpose().mul_vec(b);
    let r_top = f.r.block(0, 0, n, n);
    let rhs = qtb.segment(0, n);
    back_substitute(&r_top, &rhs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_system_exact() {
        let a = Mat::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x_true = Vec64::from_slice(&[1.0, -1.0]);
        let b = a.mul_vec(&x_true);
        let x = least_squares(&a, &b).unwrap();
        assert!((&x - &x_true).norm() < 1e-12);
    }

    #[test]
    fn overdetermined_matches_normal_equations() {
        let a = Mat::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0], &[2.0, -1.0]]);
        let b = Vec64::from_slice(&[1.0, 2.0, 2.5, 0.5]);
        let x = least_squares(&a, &b).unwrap();
        // Normal equations: (A^T A) x = A^T b.
        let at = a.transpose();
        let ata = at.mul_mat(&a);
        let atb = at.mul_vec(&b);
        let x2 = ata.solve_dense(&atb).unwrap();
        assert!((&x - &x2).norm() < 1e-10);
    }

    #[test]
    fn rank_deficient_returns_none() {
        let a = Mat::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let b = Vec64::from_slice(&[1.0, 2.0, 3.0]);
        assert!(least_squares(&a, &b).is_none());
    }

    #[test]
    fn residual_is_orthogonal_to_columns() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, -1.0], &[0.5, 0.5]]);
        let b = Vec64::from_slice(&[1.0, 0.0, 2.0]);
        let x = least_squares(&a, &b).unwrap();
        let resid = &a.mul_vec(&x) - &b;
        let atr = a.transpose().mul_vec(&resid);
        assert!(atr.norm() < 1e-10);
    }
}
