//! Small dense row-major matrices and vectors.
//!
//! The matrices that flow through ORIANNA's factor-computation and
//! factor-graph-inference blocks are small (a handful of rows/columns — see
//! Fig. 17 of the paper), so a simple contiguous row-major layout with
//! straightforward loops is both adequate and easy to audit. Every routine
//! that performs multiply–accumulates reports them to [`crate::macs`] so
//! that arithmetic-cost experiments (Sec. 4.3, baseline models) can observe
//! the exact operation counts.

use crate::macs;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A dense row-major `f64` matrix.
///
/// # Example
/// ```
/// use orianna_math::Mat;
/// let i = Mat::identity(3);
/// assert_eq!(i[(1, 1)], 1.0);
/// assert_eq!(i[(0, 1)], 0.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{:>12.6} ", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

impl Mat {
    /// Creates a matrix of zeros with the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n`×`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "inconsistent row length");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds a matrix from a flat row-major slice.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_row_major(rows: usize, cols: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Self {
            rows,
            cols,
            data: data.to_vec(),
        }
    }

    /// Builds a diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let mut m = Self::zeros(diag.len(), diag.len());
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Flat row-major view of the data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat row-major view of the data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow of row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r` as a slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Mat {
        let mut t = Mat::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix–matrix product `self * rhs`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn mul_mat(&self, rhs: &Mat) -> Mat {
        assert_eq!(self.cols, rhs.rows, "matmul dimension mismatch");
        let mut out = Mat::zeros(self.rows, rhs.cols);
        crate::panel::matmul_into(
            &mut out.data,
            &self.data,
            &rhs.data,
            self.rows,
            self.cols,
            rhs.cols,
        );
        macs::record(self.rows * self.cols * rhs.cols);
        out
    }

    /// Allocation-free matrix product: writes `self * rhs` into `out`,
    /// which must already have the result shape. Used by the parallel hot
    /// paths together with [`crate::scratch`] so steady-state workers
    /// perform no per-operation allocation.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn mul_mat_into(&self, rhs: &Mat, out: &mut Mat) {
        assert_eq!(self.cols, rhs.rows, "matmul dimension mismatch");
        assert_eq!(out.shape(), (self.rows, rhs.cols), "output shape mismatch");
        crate::panel::matmul_into(
            &mut out.data,
            &self.data,
            &rhs.data,
            self.rows,
            self.cols,
            rhs.cols,
        );
        macs::record(self.rows * self.cols * rhs.cols);
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn mul_vec(&self, v: &Vec64) -> Vec64 {
        assert_eq!(self.cols, v.len(), "matvec dimension mismatch");
        let mut out = Vec64::zeros(self.rows);
        for r in 0..self.rows {
            let mut acc = 0.0;
            for c in 0..self.cols {
                acc += self[(r, c)] * v[c];
            }
            out[r] = acc;
        }
        macs::record(self.rows * self.cols);
        out
    }

    /// Returns `self * s` for a scalar `s`.
    pub fn scale(&self, s: f64) -> Mat {
        macs::record(self.data.len());
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * s).collect(),
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        macs::record(self.data.len());
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry; zero for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, x| m.max(x.abs()))
    }

    /// Copies `block` into `self` with its top-left corner at `(r0, c0)`.
    ///
    /// # Panics
    /// Panics if the block does not fit.
    pub fn set_block(&mut self, r0: usize, c0: usize, block: &Mat) {
        assert!(
            r0 + block.rows <= self.rows && c0 + block.cols <= self.cols,
            "block out of range"
        );
        for r in 0..block.rows {
            for c in 0..block.cols {
                self[(r0 + r, c0 + c)] = block[(r, c)];
            }
        }
    }

    /// Extracts the sub-matrix of shape `(nr, nc)` whose top-left corner is
    /// at `(r0, c0)`.
    ///
    /// # Panics
    /// Panics if the requested block is out of range.
    pub fn block(&self, r0: usize, c0: usize, nr: usize, nc: usize) -> Mat {
        assert!(
            r0 + nr <= self.rows && c0 + nc <= self.cols,
            "block out of range"
        );
        let mut out = Mat::zeros(nr, nc);
        for r in 0..nr {
            for c in 0..nc {
                out[(r, c)] = self[(r0 + r, c0 + c)];
            }
        }
        out
    }

    /// Stacks `self` on top of `other`.
    ///
    /// # Panics
    /// Panics if the column counts differ.
    pub fn vstack(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.cols, "vstack column mismatch");
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Mat {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }

    /// Number of entries with magnitude above `tol`.
    pub fn nnz(&self, tol: f64) -> usize {
        self.data.iter().filter(|x| x.abs() > tol).count()
    }

    /// Fraction of entries with magnitude above `tol`; 0 for empty matrices.
    pub fn density(&self, tol: f64) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.nnz(tol) as f64 / self.data.len() as f64
    }

    /// True when every sub-diagonal entry is (almost) zero.
    pub fn is_upper_triangular(&self, tol: f64) -> bool {
        for r in 1..self.rows {
            for c in 0..r.min(self.cols) {
                if self[(r, c)].abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Solves `self * x = b` by Gaussian elimination with partial pivoting.
    ///
    /// Returns `None` when the matrix is (numerically) singular. Used as a
    /// ground-truth oracle in tests and by the dense normal-equations path.
    ///
    /// # Panics
    /// Panics if `self` is not square or `b` has the wrong length.
    pub fn solve_dense(&self, b: &Vec64) -> Option<Vec64> {
        assert_eq!(self.rows, self.cols, "solve_dense requires a square matrix");
        assert_eq!(self.rows, b.len(), "rhs length mismatch");
        let n = self.rows;
        let mut a = self.clone();
        let mut x = b.clone();
        for col in 0..n {
            // Partial pivot.
            let mut piv = col;
            for r in col + 1..n {
                if a[(r, col)].abs() > a[(piv, col)].abs() {
                    piv = r;
                }
            }
            if a[(piv, col)].abs() < 1e-13 {
                return None;
            }
            if piv != col {
                for c in 0..n {
                    let tmp = a[(col, c)];
                    a[(col, c)] = a[(piv, c)];
                    a[(piv, c)] = tmp;
                }
                let tmp = x[col];
                x[col] = x[piv];
                x[piv] = tmp;
            }
            for r in col + 1..n {
                let f = a[(r, col)] / a[(col, col)];
                if f == 0.0 {
                    continue;
                }
                for c in col..n {
                    a[(r, c)] -= f * a[(col, c)];
                }
                x[r] -= f * x[col];
                macs::record(n - col + 1);
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut acc = x[col];
            for c in col + 1..n {
                acc -= a[(col, c)] * x[c];
            }
            x[col] = acc / a[(col, col)];
            macs::record(n - col);
        }
        Some(x)
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols, "index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &Mat {
    type Output = Mat;
    fn add(self, rhs: &Mat) -> Mat {
        assert_eq!(self.shape(), rhs.shape(), "add shape mismatch");
        macs::record(self.data.len());
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &Mat {
    type Output = Mat;
    fn sub(self, rhs: &Mat) -> Mat {
        assert_eq!(self.shape(), rhs.shape(), "sub shape mismatch");
        macs::record(self.data.len());
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Mul for &Mat {
    type Output = Mat;
    fn mul(self, rhs: &Mat) -> Mat {
        self.mul_mat(rhs)
    }
}

impl Neg for &Mat {
    type Output = Mat;
    fn neg(self) -> Mat {
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| -x).collect(),
        }
    }
}

/// A dense `f64` vector.
///
/// # Example
/// ```
/// use orianna_math::Vec64;
/// let v = Vec64::from_slice(&[3.0, 4.0]);
/// assert_eq!(v.norm(), 5.0);
/// ```
#[derive(Clone, PartialEq, Default)]
pub struct Vec64 {
    data: Vec<f64>,
}

impl fmt::Debug for Vec64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Vec64 {:?}", self.data)
    }
}

impl Vec64 {
    /// Creates a vector of zeros of the given length.
    pub fn zeros(n: usize) -> Self {
        Self { data: vec![0.0; n] }
    }

    /// Builds a vector by copying the slice.
    pub fn from_slice(s: &[f64]) -> Self {
        Self { data: s.to_vec() }
    }

    /// Length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow of the contents.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable borrow of the contents.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Euclidean (2-) norm.
    pub fn norm(&self) -> f64 {
        macs::record(self.data.len());
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Dot product.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn dot(&self, rhs: &Vec64) -> f64 {
        assert_eq!(self.len(), rhs.len(), "dot length mismatch");
        macs::record(self.data.len());
        self.data.iter().zip(&rhs.data).map(|(a, b)| a * b).sum()
    }

    /// Returns `self * s`.
    pub fn scale(&self, s: f64) -> Vec64 {
        macs::record(self.data.len());
        Vec64 {
            data: self.data.iter().map(|x| x * s).collect(),
        }
    }

    /// Copies `seg` into `self` starting at index `at`.
    ///
    /// # Panics
    /// Panics if the segment does not fit.
    pub fn set_segment(&mut self, at: usize, seg: &Vec64) {
        assert!(at + seg.len() <= self.len(), "segment out of range");
        self.data[at..at + seg.len()].copy_from_slice(&seg.data);
    }

    /// Extracts `n` entries starting at `at`.
    ///
    /// # Panics
    /// Panics if the segment is out of range.
    pub fn segment(&self, at: usize, n: usize) -> Vec64 {
        assert!(at + n <= self.len(), "segment out of range");
        Vec64::from_slice(&self.data[at..at + n])
    }

    /// Appends all entries of `other`.
    pub fn extend(&mut self, other: &Vec64) {
        self.data.extend_from_slice(&other.data);
    }

    /// Interprets the vector as an `n×1` matrix.
    pub fn to_col_mat(&self) -> Mat {
        Mat::from_row_major(self.len(), 1, &self.data)
    }
}

impl Index<usize> for Vec64 {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.data[i]
    }
}

impl IndexMut<usize> for Vec64 {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.data[i]
    }
}

impl Add for &Vec64 {
    type Output = Vec64;
    fn add(self, rhs: &Vec64) -> Vec64 {
        assert_eq!(self.len(), rhs.len(), "add length mismatch");
        macs::record(self.data.len());
        Vec64 {
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &Vec64 {
    type Output = Vec64;
    fn sub(self, rhs: &Vec64) -> Vec64 {
        assert_eq!(self.len(), rhs.len(), "sub length mismatch");
        macs::record(self.data.len());
        Vec64 {
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Neg for &Vec64 {
    type Output = Vec64;
    fn neg(self) -> Vec64 {
        Vec64 {
            data: self.data.iter().map(|x| -x).collect(),
        }
    }
}

impl FromIterator<f64> for Vec64 {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Vec64 {
            data: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_times_anything_is_identity_map() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Mat::identity(2);
        assert_eq!(i.mul_mat(&a), a);
        assert_eq!(a.mul_mat(&i), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Mat::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.mul_mat(&b);
        assert_eq!(c, Mat::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_rectangular_shapes() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(3, 5);
        assert_eq!(a.mul_mat(&b).shape(), (2, 5));
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_mismatch_panics() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 3);
        let _ = a.mul_mat(&b);
    }

    #[test]
    fn transpose_involution() {
        let a = Mat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn mul_vec_known() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let v = Vec64::from_slice(&[1.0, -1.0]);
        assert_eq!(a.mul_vec(&v).as_slice(), &[-1.0, -1.0]);
    }

    #[test]
    fn block_roundtrip() {
        let mut a = Mat::zeros(4, 4);
        let b = Mat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        a.set_block(1, 2, &b);
        assert_eq!(a.block(1, 2, 2, 2), b);
        assert_eq!(a[(0, 0)], 0.0);
        assert_eq!(a[(1, 2)], 1.0);
    }

    #[test]
    fn vstack_shapes_and_values() {
        let a = Mat::from_rows(&[&[1.0, 2.0]]);
        let b = Mat::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let s = a.vstack(&b);
        assert_eq!(s.shape(), (3, 2));
        assert_eq!(s[(2, 1)], 6.0);
    }

    #[test]
    fn density_and_nnz() {
        let a = Mat::from_rows(&[&[1.0, 0.0], &[0.0, 0.0]]);
        assert_eq!(a.nnz(1e-12), 1);
        assert!((a.density(1e-12) - 0.25).abs() < 1e-15);
    }

    #[test]
    fn upper_triangular_detection() {
        let u = Mat::from_rows(&[&[1.0, 2.0], &[0.0, 3.0]]);
        let l = Mat::from_rows(&[&[1.0, 0.0], &[2.0, 3.0]]);
        assert!(u.is_upper_triangular(1e-12));
        assert!(!l.is_upper_triangular(1e-12));
    }

    #[test]
    fn solve_dense_recovers_solution() {
        let a = Mat::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let x_true = Vec64::from_slice(&[1.0, 2.0]);
        let b = a.mul_vec(&x_true);
        let x = a.solve_dense(&b).unwrap();
        for i in 0..2 {
            assert!((x[i] - x_true[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn solve_dense_singular_returns_none() {
        let a = Mat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let b = Vec64::from_slice(&[1.0, 2.0]);
        assert!(a.solve_dense(&b).is_none());
    }

    #[test]
    fn solve_dense_requires_pivoting() {
        // Zero leading pivot forces a row swap.
        let a = Mat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let b = Vec64::from_slice(&[2.0, 3.0]);
        let x = a.solve_dense(&b).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn vector_ops() {
        let a = Vec64::from_slice(&[1.0, 2.0]);
        let b = Vec64::from_slice(&[3.0, 4.0]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 6.0]);
        assert_eq!((&a - &b).as_slice(), &[-2.0, -2.0]);
        assert_eq!(a.dot(&b), 11.0);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0]);
    }

    #[test]
    fn vector_segments() {
        let mut v = Vec64::zeros(5);
        v.set_segment(2, &Vec64::from_slice(&[7.0, 8.0]));
        assert_eq!(v.segment(2, 2).as_slice(), &[7.0, 8.0]);
        assert_eq!(v[0], 0.0);
    }

    #[test]
    fn from_diag_builds_diagonal() {
        let d = Mat::from_diag(&[1.0, 2.0, 3.0]);
        assert_eq!(d[(1, 1)], 2.0);
        assert_eq!(d[(0, 1)], 0.0);
        assert_eq!(d.shape(), (3, 3));
    }
}
