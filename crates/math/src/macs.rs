//! Multiply–accumulate (MAC) accounting.
//!
//! Sec. 4.3 of the paper argues that the unified pose representation
//! `<so(n), T(n)>` saves 52.7% of MAC operations relative to SE(3). To
//! reproduce that number — and to feed the analytic CPU/GPU baseline cost
//! models with *measured* operation counts rather than estimates — every
//! arithmetic kernel in this workspace reports its MACs here.
//!
//! The counter is thread-local so parallel tests do not interfere; scoped
//! measurement is provided by [`measure`].
//!
//! # Example
//! ```
//! use orianna_math::{macs, Mat};
//! let a = Mat::identity(4);
//! let (_, n) = macs::measure(|| a.mul_mat(&a));
//! assert_eq!(n, 64); // 4*4*4 multiply-accumulates
//! ```

use std::cell::Cell;

thread_local! {
    static COUNTER: Cell<u64> = const { Cell::new(0) };
}

/// Adds `n` MACs to the thread-local counter.
#[inline]
pub fn record(n: usize) {
    COUNTER.with(|c| c.set(c.get() + n as u64));
}

/// Current thread-local MAC count.
pub fn count() -> u64 {
    COUNTER.with(|c| c.get())
}

/// Resets the thread-local MAC count to zero.
pub fn reset() {
    COUNTER.with(|c| c.set(0));
}

/// Runs `f` and returns its result together with the number of MACs it
/// performed. Nested measurements compose: the outer measurement includes
/// the inner one's operations.
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = count();
    let out = f();
    (out, count() - before)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Mat, Vec64};

    #[test]
    fn measure_counts_matvec() {
        let a = Mat::identity(3);
        let v = Vec64::zeros(3);
        let (_, n) = measure(|| a.mul_vec(&v));
        assert_eq!(n, 9);
    }

    #[test]
    fn measure_is_scoped() {
        let a = Mat::identity(2);
        let (_, first) = measure(|| a.mul_mat(&a));
        let (_, second) = measure(|| a.mul_mat(&a));
        assert_eq!(first, second);
    }

    #[test]
    fn nested_measure_composes() {
        let a = Mat::identity(2);
        let (inner, outer) = measure(|| {
            let (_, n) = measure(|| a.mul_mat(&a));
            n
        });
        assert_eq!(inner, 8);
        assert!(outer >= inner);
    }

    #[test]
    fn reset_clears() {
        record(5);
        reset();
        assert_eq!(count(), 0);
    }
}
