//! In-place panel kernels on flat row-major `f64` buffers.
//!
//! The arena-backed execution path (`SolvePlan` workspaces, the compiler's
//! register file, the hardware QR template) lays every frontal matrix out as
//! a contiguous `rows × width` row-major panel inside one pre-sized buffer.
//! This module provides the numeric kernels that operate directly on such
//! panels without ever materializing a [`crate::Mat`]:
//!
//! * [`matmul_into`] — blocked column-panel matrix product. The output is
//!   computed in fixed-width column chunks held in register accumulators,
//!   but every output element still accumulates its `k` terms in ascending
//!   order, so the result is **bitwise identical** to the naive triple loop
//!   (and therefore reproducible across runs and thread counts).
//! * [`triangularize`] — in-place R-only Householder triangularization.
//!   Applies exactly the reflection schedule of [`crate::householder_qr`]
//!   but skips the orthogonal-factor accumulation, so the panel afterwards
//!   holds `zero_below_diag(R)` bit for bit.
//! * [`givens_triangularize`] — in-place Givens-rotation core with the same
//!   rotation schedule (and rotation count) as [`crate::givens_qr`].
//!
//! ## SIMD dispatch
//!
//! The two hot inner loops — the matmul accumulate and the Householder
//! apply ([`reflect_left`]) — have AVX f64×4 variants selected at runtime
//! via [`crate::simd::enabled`]. Both vectorize **across output columns**:
//! each of the four lanes owns one column and accumulates its `k` (or row)
//! terms in the same ascending order as the scalar loop, with a separate
//! multiply and add per term (no FMA). Lane-independent vectorization plus
//! unfused arithmetic means every output element sees the identical IEEE
//! operation sequence, so the AVX kernels are bitwise identical to the
//! scalar fallbacks ([`matmul_into_scalar`], [`reflect_left_scalar`],
//! [`triangularize_scalar`] — kept public as conformance references). The
//! Householder *norm* ([`householder_vector`]) is deliberately left scalar:
//! it is a sequential reduction whose summation order defines the bitwise
//! contract, and it is O(rows) against the apply's O(rows × width).
//!
//! All kernels record MACs identically to the `Mat`-based paths they mirror
//! so the paper's arithmetic-saving accounting is unaffected.

use crate::macs;
use crate::simd;

/// Width of the column chunk held in register accumulators by
/// [`matmul_into`]. Four `f64`s fill a 256-bit vector register; the chunk is
/// narrowed at the right edge of the output, never widened.
const CHUNK: usize = 4;

/// Blocked matrix product `out = a · b` on flat row-major buffers where `a`
/// is `m×k`, `b` is `k×n` and `out` is `m×n`. Zero rows of `a` are skipped
/// exactly like the naive kernel. Uses the AVX f64×4 accumulate kernel when
/// available (bitwise identical to the scalar chunks — see the module
/// docs). Does **not** record MACs — callers that model arithmetic cost
/// record `m·k·n` themselves.
///
/// # Panics
/// Panics (in debug builds) when the slice lengths disagree with the shapes.
pub fn matmul_into(out: &mut [f64], a: &[f64], b: &[f64], m: usize, k: usize, n: usize) {
    matmul_into_impl(out, a, b, m, k, n, simd::enabled());
}

/// The scalar reference for [`matmul_into`]: identical arithmetic, never
/// dispatches to SIMD. Public so conformance tests can compare the two
/// paths bitwise regardless of the host CPU.
pub fn matmul_into_scalar(out: &mut [f64], a: &[f64], b: &[f64], m: usize, k: usize, n: usize) {
    matmul_into_impl(out, a, b, m, k, n, false);
}

fn matmul_into_impl(
    out: &mut [f64],
    a: &[f64],
    b: &[f64],
    m: usize,
    k: usize,
    n: usize,
    use_simd: bool,
) {
    debug_assert_eq!(out.len(), m * n);
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    out.fill(0.0);
    let mut c0 = 0;
    while c0 < n {
        let w = CHUNK.min(n - c0);
        match w {
            4 => {
                #[cfg(target_arch = "x86_64")]
                if use_simd {
                    // Safety: `use_simd` implies AVX was detected.
                    unsafe { avx::matmul_chunk4(out, a, b, m, k, n, c0) };
                    c0 += w;
                    continue;
                }
                let _ = use_simd;
                matmul_chunk::<4>(out, a, b, m, k, n, c0);
            }
            3 => matmul_chunk::<3>(out, a, b, m, k, n, c0),
            2 => matmul_chunk::<2>(out, a, b, m, k, n, c0),
            _ => matmul_chunk::<1>(out, a, b, m, k, n, c0),
        }
        c0 += w;
    }
}

/// Computes output columns `c0..c0 + W` of `out = a · b`. Per output
/// element the `k` terms are added in ascending order with the same
/// zero-skip as the naive kernel, so each element is bitwise identical to
/// the triple-loop result.
fn matmul_chunk<const W: usize>(
    out: &mut [f64],
    a: &[f64],
    b: &[f64],
    m: usize,
    k: usize,
    n: usize,
    c0: usize,
) {
    for r in 0..m {
        let arow = &a[r * k..(r + 1) * k];
        let mut acc = [0.0f64; W];
        for (kk, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &b[kk * n + c0..kk * n + c0 + W];
            for (j, accj) in acc.iter_mut().enumerate() {
                *accj += av * brow[j];
            }
        }
        out[r * n + c0..r * n + c0 + W].copy_from_slice(&acc);
    }
}

/// In-place R-only Householder triangularization of a `rows × width` panel.
///
/// Runs the exact reflection schedule of [`crate::householder_qr`] (same
/// Householder vectors, same application order, same MAC accounting) but
/// never touches an orthogonal accumulator, then zeroes the sub-diagonal the
/// way `householder_qr` does before returning `R`. The panel afterwards is
/// bitwise identical to `householder_qr(&a).r` for the same data. `vbuf`
/// must hold at least `rows` elements.
pub fn triangularize(panel: &mut [f64], rows: usize, width: usize, vbuf: &mut [f64]) {
    triangularize_impl(panel, rows, width, vbuf, simd::enabled());
}

/// The scalar reference for [`triangularize`]: forces the scalar
/// Householder apply. Public so conformance tests can compare the two
/// paths bitwise regardless of the host CPU.
pub fn triangularize_scalar(panel: &mut [f64], rows: usize, width: usize, vbuf: &mut [f64]) {
    triangularize_impl(panel, rows, width, vbuf, false);
}

fn triangularize_impl(panel: &mut [f64], rows: usize, width: usize, vbuf: &mut [f64], simd: bool) {
    debug_assert_eq!(panel.len(), rows * width);
    debug_assert!(vbuf.len() >= rows);
    for k in 0..width.min(rows.saturating_sub(1)) {
        let v = &mut vbuf[..rows - k];
        if householder_vector(panel, rows, width, k, v) {
            reflect_left_impl(panel, rows, width, v, k, simd);
        }
    }
    // Clean sub-diagonal residue exactly like `householder_qr`: reflections
    // leave values around `eps · |a|` below the diagonal, which downstream
    // keep-row scans at absolute tolerances must never see.
    for r in 1..rows {
        let row = &mut panel[r * width..(r + 1) * width];
        row[..r.min(width)].fill(0.0);
    }
}

/// Computes the normalized Householder vector annihilating column `k` of the
/// panel below the diagonal into `v` (length `rows − k`). Returns `false`
/// when the column is already zero there. Arithmetic mirrors the `Mat`-based
/// helper in [`crate::qr`] operation for operation. Deliberately scalar —
/// the norm is an order-sensitive sequential reduction (module docs).
pub fn householder_vector(
    panel: &[f64],
    rows: usize,
    width: usize,
    k: usize,
    v: &mut [f64],
) -> bool {
    debug_assert_eq!(v.len(), rows - k);
    let mut norm2 = 0.0;
    for i in k..rows {
        let x = panel[i * width + k];
        v[i - k] = x;
        norm2 += x * x;
    }
    macs::record(rows - k);
    let below: f64 = (k + 1..rows)
        .map(|i| panel[i * width + k] * panel[i * width + k])
        .sum();
    if below < 1e-300 {
        return false;
    }
    let alpha = -v[0].signum() * norm2.sqrt();
    v[0] -= alpha;
    let vnorm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if vnorm < 1e-300 {
        return false;
    }
    let inv = 1.0 / vnorm;
    for x in v.iter_mut() {
        *x *= inv;
    }
    true
}

/// Applies `(I − 2 v vᵀ)` to rows `k..` of the `rows × width` panel,
/// column-major traversal identical to the `Mat`-based helper. Uses the
/// AVX four-column kernel when available (bitwise identical — each lane
/// owns one column and runs the scalar operation sequence).
pub fn reflect_left(panel: &mut [f64], rows: usize, width: usize, v: &[f64], k: usize) {
    reflect_left_impl(panel, rows, width, v, k, simd::enabled());
}

/// The scalar reference for [`reflect_left`]. Public so conformance tests
/// can compare the two paths bitwise regardless of the host CPU.
pub fn reflect_left_scalar(panel: &mut [f64], rows: usize, width: usize, v: &[f64], k: usize) {
    reflect_left_impl(panel, rows, width, v, k, false);
}

fn reflect_left_impl(
    panel: &mut [f64],
    rows: usize,
    width: usize,
    v: &[f64],
    k: usize,
    use_simd: bool,
) {
    debug_assert_eq!(v.len(), rows - k);
    let mut c = 0;
    #[cfg(target_arch = "x86_64")]
    if use_simd {
        while c + 4 <= width {
            // Safety: `use_simd` implies AVX was detected; columns
            // `c..c + 4` are in bounds for every touched row.
            unsafe { avx::reflect_cols4(panel, rows, width, v, k, c) };
            macs::record(4 * 2 * (rows - k));
            c += 4;
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = use_simd;
    while c < width {
        reflect_col(panel, rows, width, v, k, c);
        macs::record(2 * (rows - k));
        c += 1;
    }
}

/// One column of the Householder apply: dot in ascending row order, then
/// the rank-1 update. Both the scalar and remainder paths use this.
#[inline]
fn reflect_col(panel: &mut [f64], rows: usize, width: usize, v: &[f64], k: usize, c: usize) {
    let mut dot = 0.0;
    for i in k..rows {
        dot += v[i - k] * panel[i * width + c];
    }
    let f = 2.0 * dot;
    for i in k..rows {
        panel[i * width + c] -= f * v[i - k];
    }
}

/// AVX f64×4 variants of the hot inner loops. Every kernel vectorizes
/// across four output columns — one column per lane — with separate
/// multiply and add intrinsics, so each element's IEEE operation sequence
/// is exactly the scalar one (see the module docs).
#[cfg(target_arch = "x86_64")]
mod avx {
    use std::arch::x86_64::{
        _mm256_add_pd, _mm256_loadu_pd, _mm256_mul_pd, _mm256_set1_pd, _mm256_setzero_pd,
        _mm256_storeu_pd, _mm256_sub_pd,
    };

    /// Output columns `c0..c0 + 4` of `out = a · b`, lane `j` owning
    /// column `c0 + j`: ascending-`k` accumulation with the naive
    /// zero-row skip, bitwise identical to `matmul_chunk::<4>`.
    ///
    /// # Safety
    /// Requires AVX; `c0 + 4 <= n` and the shapes must match the slices.
    #[target_feature(enable = "avx")]
    pub unsafe fn matmul_chunk4(
        out: &mut [f64],
        a: &[f64],
        b: &[f64],
        m: usize,
        k: usize,
        n: usize,
        c0: usize,
    ) {
        debug_assert!(c0 + 4 <= n);
        for r in 0..m {
            let arow = &a[r * k..(r + 1) * k];
            let mut acc = _mm256_setzero_pd();
            for (kk, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let brow = _mm256_loadu_pd(b.as_ptr().add(kk * n + c0));
                acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_set1_pd(av), brow));
            }
            _mm256_storeu_pd(out.as_mut_ptr().add(r * n + c0), acc);
        }
    }

    /// Householder apply to columns `c0..c0 + 4`, lane `j` owning column
    /// `c0 + j`: per lane the dot accumulates in ascending row order and
    /// the update subtracts `f·vᵢ` exactly like `reflect_col`.
    ///
    /// # Safety
    /// Requires AVX; `c0 + 4 <= width` and `v.len() == rows - k`.
    #[target_feature(enable = "avx")]
    pub unsafe fn reflect_cols4(
        panel: &mut [f64],
        rows: usize,
        width: usize,
        v: &[f64],
        k: usize,
        c0: usize,
    ) {
        debug_assert!(c0 + 4 <= width);
        debug_assert_eq!(v.len(), rows - k);
        let mut dot = _mm256_setzero_pd();
        for i in k..rows {
            let vi = _mm256_set1_pd(*v.get_unchecked(i - k));
            let row = _mm256_loadu_pd(panel.as_ptr().add(i * width + c0));
            dot = _mm256_add_pd(dot, _mm256_mul_pd(vi, row));
        }
        let f = _mm256_mul_pd(_mm256_set1_pd(2.0), dot);
        for i in k..rows {
            let vi = _mm256_set1_pd(*v.get_unchecked(i - k));
            let row = _mm256_loadu_pd(panel.as_ptr().add(i * width + c0));
            let updated = _mm256_sub_pd(row, _mm256_mul_pd(f, vi));
            _mm256_storeu_pd(panel.as_mut_ptr().add(i * width + c0), updated);
        }
    }
}

/// In-place Givens-rotation triangularization of a `rows × width` panel.
/// Identical rotation schedule, arithmetic and MAC accounting to
/// [`crate::givens_qr`]; returns the rotation count that drives the
/// hardware QR unit's latency model.
pub fn givens_triangularize(panel: &mut [f64], rows: usize, width: usize) -> usize {
    debug_assert_eq!(panel.len(), rows * width);
    let mut rotations = 0;
    for col in 0..width.min(rows) {
        for row in (col + 1..rows).rev() {
            let x = panel[col * width + col];
            let y = panel[row * width + col];
            if y.abs() < 1e-300 {
                continue;
            }
            let h = x.hypot(y);
            macs::record(3);
            let (c, s) = (x / h, y / h);
            for j in col..width {
                let rc = panel[col * width + j];
                let rr = panel[row * width + j];
                panel[col * width + j] = c * rc + s * rr;
                panel[row * width + j] = -s * rc + c * rr;
            }
            macs::record(4 * (width - col));
            panel[row * width + col] = 0.0;
            rotations += 1;
        }
    }
    rotations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{givens_qr, householder_qr, Mat};

    fn random_like(rows: usize, cols: usize, seed: u64) -> Mat {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        let mut m = Mat::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = next();
            }
        }
        m
    }

    /// The naive triple loop `mul_mat` used before blocking, kept here as
    /// the bitwise reference.
    fn naive_mul(a: &Mat, b: &Mat) -> Mat {
        let mut out = Mat::zeros(a.rows(), b.cols());
        for r in 0..a.rows() {
            for k in 0..a.cols() {
                let av = a[(r, k)];
                if av == 0.0 {
                    continue;
                }
                for c in 0..b.cols() {
                    out[(r, c)] += av * b[(k, c)];
                }
            }
        }
        out
    }

    #[test]
    fn blocked_matmul_is_bitwise_identical_to_naive() {
        for (m, k, n, seed) in [
            (1, 1, 1, 1),
            (3, 4, 5, 2),
            (4, 4, 4, 3),
            (7, 5, 9, 4),
            (8, 8, 13, 5),
            (2, 9, 3, 6),
        ] {
            let a = random_like(m, k, seed);
            let b = random_like(k, n, seed + 100);
            let naive = naive_mul(&a, &b);
            let mut blocked = vec![0.0f64; m * n];
            matmul_into(&mut blocked, a.as_slice(), b.as_slice(), m, k, n);
            assert_eq!(blocked.as_slice(), naive.as_slice(), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn blocked_matmul_skips_zero_rows_like_naive() {
        let mut a = random_like(4, 4, 9);
        for c in 0..4 {
            a[(2, c)] = 0.0;
        }
        let b = random_like(4, 6, 10);
        let naive = naive_mul(&a, &b);
        let mut blocked = vec![0.0f64; 4 * 6];
        matmul_into(&mut blocked, a.as_slice(), b.as_slice(), 4, 4, 6);
        assert_eq!(blocked.as_slice(), naive.as_slice());
    }

    #[test]
    fn simd_matmul_is_bitwise_identical_to_scalar() {
        // Both dispatch outcomes must agree bitwise whatever this CPU
        // supports; when AVX is active this exercises the real mixed
        // (SIMD body + scalar remainder) path over odd widths.
        for (m, k, n, seed) in [
            (1, 1, 4, 21),
            (5, 7, 8, 22),
            (6, 3, 9, 23),
            (9, 9, 11, 24),
            (4, 16, 17, 25),
            (13, 2, 19, 26),
        ] {
            let a = random_like(m, k, seed);
            let b = random_like(k, n, seed + 100);
            let mut dispatched = vec![0.0f64; m * n];
            let mut scalar = vec![0.0f64; m * n];
            matmul_into(&mut dispatched, a.as_slice(), b.as_slice(), m, k, n);
            matmul_into_scalar(&mut scalar, a.as_slice(), b.as_slice(), m, k, n);
            assert_eq!(dispatched, scalar, "{m}x{k}x{n}");
        }
    }

    #[test]
    fn simd_reflect_is_bitwise_identical_to_scalar() {
        for (rows, width, k, seed) in [
            (6, 4, 0, 31),
            (8, 9, 2, 32),
            (12, 7, 5, 33),
            (5, 12, 1, 34),
            (16, 16, 3, 35),
        ] {
            let base = random_like(rows, width, seed);
            let mut v: Vec<f64> = (0..rows - k).map(|i| (i as f64 + 1.0).recip()).collect();
            let vnorm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            v.iter_mut().for_each(|x| *x /= vnorm);
            let mut dispatched = base.as_slice().to_vec();
            let mut scalar = base.as_slice().to_vec();
            reflect_left(&mut dispatched, rows, width, &v, k);
            reflect_left_scalar(&mut scalar, rows, width, &v, k);
            assert_eq!(dispatched, scalar, "{rows}x{width} k={k}");
        }
    }

    #[test]
    fn simd_reflect_records_same_macs_as_scalar() {
        let rows = 9;
        let width = 10;
        let k = 2;
        let base = random_like(rows, width, 41);
        let v: Vec<f64> = (0..rows - k).map(|i| (i as f64 + 0.5).sin()).collect();
        let mut a = base.as_slice().to_vec();
        let (_, simd_macs) = macs::measure(|| reflect_left(&mut a, rows, width, &v, k));
        let mut b = base.as_slice().to_vec();
        let (_, scalar_macs) = macs::measure(|| reflect_left_scalar(&mut b, rows, width, &v, k));
        assert_eq!(simd_macs, scalar_macs);
    }

    #[test]
    fn triangularize_matches_householder_qr_bitwise() {
        for (m, n, seed) in [(4, 4, 1), (6, 3, 2), (3, 5, 3), (8, 8, 4), (9, 2, 5)] {
            let a = random_like(m, n, seed);
            let reference = householder_qr(&a).r;
            let mut panel = a.as_slice().to_vec();
            let mut vbuf = vec![0.0f64; m];
            triangularize(&mut panel, m, n, &mut vbuf);
            assert_eq!(panel.as_slice(), reference.as_slice(), "{m}x{n}");
            // And the forced-scalar path agrees with the dispatched one.
            let mut panel2 = a.as_slice().to_vec();
            triangularize_scalar(&mut panel2, m, n, &mut vbuf);
            assert_eq!(panel2, panel, "{m}x{n} scalar");
        }
    }

    #[test]
    fn givens_core_matches_givens_qr_bitwise() {
        for (m, n, seed) in [(4, 3, 11), (5, 5, 12), (6, 2, 13)] {
            let a = random_like(m, n, seed);
            let (reference, ref_rot) = givens_qr(&a);
            let mut panel = a.as_slice().to_vec();
            let rot = givens_triangularize(&mut panel, m, n);
            assert_eq!(rot, ref_rot);
            assert_eq!(panel.as_slice(), reference.as_slice(), "{m}x{n}");
        }
    }
}
