//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! a small wall-clock benchmark harness exposing the criterion API surface
//! the `orianna-bench` crate uses: `criterion_group!`/`criterion_main!`,
//! benchmark groups, `bench_function`/`bench_with_input`, `Bencher::iter`
//! and `iter_batched`, and `BenchmarkId`. Timings are real measurements
//! (adaptive iteration count targeting a fixed per-benchmark budget,
//! median-of-samples reporting) — adequate for the serial-vs-parallel
//! speedup comparisons in this repository, without criterion's statistical
//! machinery.

use std::time::{Duration, Instant};

/// Re-export of the standard optimization barrier under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup; the shim treats all variants alike.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per measured invocation.
    PerIteration,
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher<'a> {
    /// Wall-clock budget for the measurement loop.
    budget: Duration,
    /// Where to record the per-iteration estimate.
    result_ns: &'a mut f64,
}

impl Bencher<'_> {
    /// Times `routine`, executing it enough times to fill the budget.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm up and estimate a single-iteration cost.
        let t0 = Instant::now();
        black_box(routine());
        let first = t0.elapsed().max(Duration::from_nanos(1));
        // Batch size targeting ~1/8 of the budget per sample.
        let per_sample = self.budget.as_nanos() / 8;
        let batch = (per_sample / first.as_nanos()).clamp(1, 1_000_000) as u64;
        let mut samples: Vec<f64> = Vec::new();
        let start = Instant::now();
        while start.elapsed() < self.budget || samples.len() < 3 {
            let s = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(s.elapsed().as_nanos() as f64 / batch as f64);
            if samples.len() >= 64 {
                break;
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        *self.result_ns = samples[samples.len() / 2];
    }

    /// Times `routine` over fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut samples: Vec<f64> = Vec::new();
        let start = Instant::now();
        while start.elapsed() < self.budget || samples.len() < 3 {
            let input = setup();
            let s = Instant::now();
            black_box(routine(input));
            samples.push(s.elapsed().as_nanos() as f64);
            if samples.len() >= 256 {
                break;
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        *self.result_ns = samples[samples.len() / 2];
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// The benchmark driver. Honors a substring filter passed on the command
/// line (as `cargo bench -- <filter>` does).
pub struct Criterion {
    filter: Option<String>,
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            filter: None,
            budget: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Applies command-line arguments (substring filter; flags ignored).
    pub fn configure_from_args(mut self) -> Self {
        let mut skip_value = false;
        for arg in std::env::args().skip(1) {
            if skip_value {
                skip_value = false;
                continue;
            }
            if arg == "--bench" || arg == "--test" {
                continue;
            }
            if arg == "--measurement-time" || arg == "--warm-up-time" || arg == "--sample-size" {
                skip_value = true;
                continue;
            }
            if arg.starts_with('-') {
                continue;
            }
            self.filter = Some(arg);
        }
        self
    }

    /// Sets the per-benchmark wall-clock budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.budget = d;
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        self.run(None, &id.id, f);
        self
    }

    fn run<F: FnMut(&mut Bencher<'_>)>(&mut self, group: Option<&str>, id: &str, mut f: F) {
        let full = match group {
            Some(g) => format!("{g}/{id}"),
            None => id.to_string(),
        };
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut result_ns = f64::NAN;
        let mut b = Bencher {
            budget: self.budget,
            result_ns: &mut result_ns,
        };
        f(&mut b);
        if result_ns.is_nan() {
            println!("{full:<60} (no measurement)");
        } else {
            println!("{full:<60} time: [{}]", format_ns(result_ns));
        }
    }

    /// Final reporting hook (no-op in the shim).
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the shim's sampling is time-budgeted.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the group's per-benchmark wall-clock budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.budget = d;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        let name = self.name.clone();
        self.criterion.run(Some(&name), &id.id, f);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher<'_>, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = self.name.clone();
        self.criterion.run(Some(&name), &id.id, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_positive_times() {
        let mut c = Criterion {
            filter: None,
            budget: Duration::from_millis(5),
        };
        let mut captured = f64::NAN;
        {
            let mut b = Bencher {
                budget: c.budget,
                result_ns: &mut captured,
            };
            b.iter(|| std::hint::black_box(3u64.wrapping_mul(7)));
        }
        assert!(captured > 0.0);
        // Also exercise the public paths end to end.
        c.bench_function("smoke", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("group");
        g.sample_size(10).bench_function("inner", |b| {
            b.iter_batched(|| 21u64, |x| x * 2, BatchSize::SmallInput)
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("qr", 8).id, "qr/8");
        assert_eq!(BenchmarkId::from_parameter("app").id, "app");
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("nomatch".to_string()),
            budget: Duration::from_millis(1),
        };
        let mut ran = false;
        c.bench_function("something_else", |_b| ran = true);
        assert!(!ran);
    }
}
