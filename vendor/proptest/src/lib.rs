//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the subset of proptest it uses: the [`proptest!`] macro over named
//! strategies, range strategies for numeric types, `prop::collection::vec`,
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, and
//! [`ProptestConfig::with_cases`]. Sampling is purely random (seeded
//! deterministically from the test name) — there is no shrinking. A failing
//! case therefore reports the sampled arguments verbatim so it can be
//! reproduced as a plain unit test.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Per-test configuration (subset of upstream's).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases each test must run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` accepted samples per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Why a sampled case did not count as a pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the sample out; try another.
    Reject,
    /// `prop_assert!` failed: the property is violated.
    Fail(String),
}

/// Deterministic test-case RNG (xoshiro256++ seeded from the test name).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds the generator from an arbitrary string (the test name).
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name, then SplitMix64 expansion.
        let mut h: u64 = 0xCBF29CE484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001B3);
        }
        let mut s = [0u64; 4];
        for w in &mut s {
            h = h.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = h;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            *w = z ^ (z >> 31);
        }
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        Self { s }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator. Unlike upstream there is no shrinking tree; `sample`
/// draws one value.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy generating exactly one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start() + (self.end() - self.start()) * rng.unit_f64()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, i64, i32);

impl Strategy for Range<u8> {
    type Value = u8;
    fn sample(&self, rng: &mut TestRng) -> u8 {
        assert!(self.start < self.end, "empty range strategy");
        let span = (self.end - self.start) as u64;
        self.start + (rng.next_u64() % span) as u8
    }
}

/// Boolean strategy with the given probability of `true`.
#[derive(Debug, Clone)]
pub struct Probability(pub f64);

impl Strategy for Probability {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.unit_f64() < self.0
    }
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::ops::Range;

    /// Length specification for [`vec`]: a fixed size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for vectors of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property-test module needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{Just, Probability, ProptestConfig, Strategy, TestCaseError};

    /// Namespace alias matching upstream's `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests. Supported grammar (subset of upstream):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in -1.0f64..1.0, v in prop::collection::vec(0.0f64..1.0, 8)) {
///         prop_assume!(x != 0.0);
///         prop_assert!(x.abs() <= 1.0, "x = {x}");
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($cfg) $($rest)*);
    };
    (@expand ($cfg:expr)
        $( $(#[$meta:meta])+ fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(16).max(1024);
                while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= max_attempts,
                        "proptest `{}`: gave up after {} attempts ({} accepted): \
                         prop_assume! rejects too many samples",
                        stringify!($name),
                        attempts,
                        accepted,
                    );
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest `{}` failed: {}\nwith inputs:{}",
                                stringify!($name),
                                msg,
                                ::std::string::String::new()
                                    $(+ "\n  " + stringify!($arg) + " = "
                                        + &::std::format!("{:?}", $arg))+
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Property-test assertion: on failure the current case fails with the
/// formatted message (or the stringified condition).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if $cond {
        } else {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if $cond {
        } else {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Property-test equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: {:?} == {:?}",
                l,
                r
            )));
        }
    }};
}

/// Filters the current sample out without failing the test.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if $cond {
        } else {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -1.5f64..1.5) {
            prop_assert!((-1.5..1.5).contains(&x), "{x}");
        }

        #[test]
        fn assume_rejects_without_failing(x in -1.0f64..1.0) {
            prop_assume!(x >= 0.0);
            prop_assert!(x >= 0.0);
        }

        #[test]
        fn vec_strategy_has_requested_len(v in prop::collection::vec(0.0f64..1.0, 7)) {
            prop_assert_eq!(v.len(), 7);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_name() {
        let mut a = crate::TestRng::from_name("case");
        let mut b = crate::TestRng::from_name("case");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = crate::TestRng::from_name("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    // The generated runner works under any attribute, not just `#[test]`;
    // this one is invoked manually to observe the failure panic.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(1))]
        #[allow(dead_code)]
        fn always_fails(x in 0.0f64..1.0) {
            prop_assert!(x > 2.0, "x = {x} is not > 2");
        }
    }

    #[test]
    #[should_panic(expected = "proptest `always_fails` failed")]
    fn failures_panic_with_inputs() {
        always_fails();
    }
}
