//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the tiny slice of the `rand` 0.8 API it actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`]) and uniform range sampling
//! via [`Rng::gen_range`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — statistically solid for synthetic-workload generation,
//! with zero external dependencies. It intentionally does **not**
//! reproduce upstream `StdRng`'s exact stream; all in-repo consumers only
//! rely on *self*-reproducibility from a fixed seed.

use std::ops::Range;

/// Core trait: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Next 32-bit output (upper half of the 64-bit word).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range sampling, mirroring the `rand::Rng` extension trait.
pub trait Rng: RngCore + Sized {
    /// Uniform sample from a half-open range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// A uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Types usable as sampling ranges in [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<usize> for Range<usize> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "empty range in gen_range");
        let span = (self.end - self.start) as u64;
        self.start + (rng.next_u64() % span) as usize
    }
}

impl SampleRange<u64> for Range<u64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + rng.next_u64() % (self.end - self.start)
    }
}

impl SampleRange<i64> for Range<i64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> i64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let span = (self.end - self.start) as u64;
        self.start.wrapping_add((rng.next_u64() % span) as i64)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Generator implementations.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (the workspace's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // Avoid the (probability ~2^-256) all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_reproduce() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1 << 40), b.gen_range(0u64..1 << 40));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.gen_f64() == b.gen_f64()).count();
        assert!(same < 4);
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(99);
        for _ in 0..1000 {
            let x: f64 = r.gen_range(-2.5..4.0);
            assert!((-2.5..4.0).contains(&x));
            let u: f64 = r.gen_range(1e-12..1.0);
            assert!((1e-12..1.0).contains(&u));
        }
    }

    #[test]
    fn usize_ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let k: usize = r.gen_range(0usize..5);
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
